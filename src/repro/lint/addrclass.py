"""Static per-load address-predictability classification.

For every static load the pass decides *why* (or why not) the paper's
4096-entry two-delta stride predictor should cover it, using the loop
forest (:mod:`repro.lint.loops`) and the loop-relative value forms
(:mod:`repro.lint.induction`) of the address expression
``rs1 + rs2/imm`` relative to the load's innermost loop:

========== ===========================================================
``stride``    the address register is a basic induction variable plus a
              loop-invariant offset: constant stride = the IV step
``affine``    an affine function of a basic IV (scaled index, derived
              IV): constant per-iteration stride, value possibly
              statically unknown
``invariant`` loop-invariant address: stride 0 within any run
``chase``     the address derives from a load result produced inside
              the loop (load-to-load address dependence — linked-list
              walks)
``irregular`` everything else: hash mixing, variable-step updates,
              multiple reaching definitions, irreducible regions
``straight``  not inside any natural loop (no per-PC pattern to claim)
========== ===========================================================

Each class carries a *predicted steady-state two-delta bound*.  For the
three predictable classes the prediction is exact: once the table has
seen the same delta twice it predicts every following access of the
run, so misses at such a PC are confined to warmup (≤ 3) plus re-lock
windows after each observed delta change (≤ 2 each) — and delta
changes themselves happen only when an enclosing loop re-enters the
pattern.  The chase/irregular classes instead carry an audited
*coverage cap*: an upper bound on the fraction of their dynamic loads
the confidence gate should ever open for.  :func:`cross_check` asserts
both directions against the dynamic per-PC histograms collected by
``repro.addrpred.runner``:

- soundness floor — every predictable-class site with enough
  observations satisfies
  ``correct >= count - WARMUP_MISSES - RELOCK_MISSES * delta_changes``
  and its delta changes stay under the stability budget (a
  misclassified hash walk fails both spectacularly);
- coverage bound — the trace-weighted sum of per-class caps is an
  upper bound on the dynamic fraction of loads whose prediction the
  confidence gate actually used.

Sites whose PCs collide in the direct-mapped table (possible only for
programs longer than the table) are exempted from the per-PC floor and
reported as aliased.
"""

from ..isa.registers import reg_name
from .cfg import ControlFlowGraph
from .dataflow import definite_assignment, reg_reads
from .findings import Finding, SEV_WARNING
from .induction import (
    AFFINE,
    INV,
    IV,
    LOAD,
    LoopValues,
    combine_sum,
)
from .loops import LoopForest

CLASS_STRIDE = "stride"
CLASS_AFFINE = "affine"
CLASS_INVARIANT = "invariant"
CLASS_CHASE = "chase"
CLASS_IRREGULAR = "irregular"
CLASS_STRAIGHT = "straight"

ALL_CLASSES = (CLASS_STRIDE, CLASS_AFFINE, CLASS_INVARIANT, CLASS_CHASE,
               CLASS_IRREGULAR, CLASS_STRAIGHT)

#: classes whose steady-state two-delta accuracy prediction is 1.0
PREDICTABLE_CLASSES = frozenset(
    (CLASS_STRIDE, CLASS_AFFINE, CLASS_INVARIANT))

#: per-class upper bound on the fraction of dynamic loads whose
#: prediction the confidence gate opens for.  1.0 for classes with no
#: negative claim; the chase/irregular caps are audited empirical
#: bounds over the registered workloads (see docs/LINT.md) — a
#: violation means either the classification or the cap needs
#: revisiting, and either is worth a loud failure.
COVERAGE_CAP = {
    CLASS_STRIDE: 1.0,
    CLASS_AFFINE: 1.0,
    CLASS_INVARIANT: 1.0,
    CLASS_CHASE: 0.40,
    CLASS_IRREGULAR: 0.70,
    CLASS_STRAIGHT: 1.0,
}

#: two-delta warmup: a cold entry needs at most 3 observations before
#: the stride is promoted and predicts (see repro.addrpred.two_delta)
WARMUP_MISSES = 3
#: misses per observed delta change before the table re-locks
RELOCK_MISSES = 2
#: per-PC checks need this many observations to be meaningful
MIN_OBSERVATIONS = 16
#: slack on the delta-change budget for predictable sites, on top of
#: the entry-derived term (see :func:`cross_check`): absorbs the very
#: first delta of the run and degenerate single-iteration entries
STABILITY_BASE = 4


class LoadSite:
    """One static load with its address classification."""

    __slots__ = ("index", "line", "pc", "cls", "stride", "loop", "note")

    def __init__(self, index, line, pc, cls, stride=None, loop=None,
                 note=""):
        self.index = index
        self.line = line
        self.pc = pc
        self.cls = cls
        self.stride = stride    # per-iteration stride when known
        self.loop = loop        # innermost Loop or None
        self.note = note

    def __repr__(self):
        return "<LoadSite #%d %s stride=%r>" % (self.index, self.cls,
                                                self.stride)


class AddressClassification:
    """Per-program classification of every static load."""

    def __init__(self, program, cfg=None, forest=None):
        self.program = program
        self.cfg = cfg if cfg is not None else ControlFlowGraph(program)
        self.forest = forest if forest is not None \
            else LoopForest(self.cfg)
        self.values = LoopValues(program, self.cfg, self.forest)
        self.sites = []
        self.by_index = {}
        self._classify()

    def _classify(self):
        instrs = self.program.instructions
        for i, ins in enumerate(instrs):
            if not ins.is_load:
                continue
            site = self._classify_load(i, ins)
            self.sites.append(site)
            self.by_index[i] = site

    def _classify_load(self, i, ins):
        line = ins.line
        pc = self.program.address_of_index(i)
        loop = self.forest.loop_of(i)
        if loop is None:
            return LoadSite(i, line, pc, CLASS_STRAIGHT)
        if self.forest.in_irreducible_region(i):
            return LoadSite(i, line, pc, CLASS_IRREGULAR, loop=loop,
                            note="irreducible region")
        if ins.rs1 < 0:
            # Absolute address [imm]: invariant by construction.
            return LoadSite(i, line, pc, CLASS_INVARIANT, stride=0,
                            loop=loop)
        base = self.values.form(ins.rs1, i, loop)
        if ins.imm is not None or ins.rs2 < 0:
            offset = (INV, 0)
        else:
            offset = self.values.form(ins.rs2, i, loop)
        kinds = {base[0], offset[0]}
        combined = combine_sum(base, offset, negate=False)
        if combined[0] == LOAD:
            return LoadSite(i, line, pc, CLASS_CHASE, loop=loop)
        if combined[0] == INV:
            return LoadSite(i, line, pc, CLASS_INVARIANT, stride=0,
                            loop=loop)
        if combined[0] == AFFINE:
            if IV in kinds and kinds <= {IV, INV}:
                # A basic IV plus an invariant offset: the classic
                # pointer-bump / indexed-walk constant stride.
                return LoadSite(i, line, pc, CLASS_STRIDE,
                                stride=combined[1], loop=loop)
            return LoadSite(i, line, pc, CLASS_AFFINE,
                            stride=combined[1], loop=loop)
        return LoadSite(i, line, pc, CLASS_IRREGULAR, loop=loop)

    # ------------------------------------------------------------------

    def class_counts(self):
        """Static site count per class."""
        counts = dict.fromkeys(ALL_CLASSES, 0)
        for site in self.sites:
            counts[site.cls] += 1
        return counts

    def dynamic_class_counts(self, trace):
        """Dynamic load count per class for a trace of this program."""
        counts = dict.fromkeys(ALL_CLASSES, 0)
        by_index = self.by_index
        for s in trace.sidx:
            site = by_index.get(s)
            if site is not None:
                counts[site.cls] += 1
        return counts

    def coverage_bound(self, trace):
        """Static upper bound on the two-delta *coverage* of ``trace``:
        the fraction of dynamic loads whose prediction the confidence
        gate may use, weighting each load by its site's class cap."""
        counts = self.dynamic_class_counts(trace)
        total = sum(counts.values())
        if not total:
            return 1.0
        weighted = sum(COVERAGE_CAP[cls] * n for cls, n in counts.items())
        return weighted / total

    def aliased_indices(self, table_entries=4096):
        """Load sites whose PCs collide in a direct-mapped table of
        ``table_entries`` entries (word-aligned indexing)."""
        groups = {}
        for site in self.sites:
            groups.setdefault((site.pc >> 2) & (table_entries - 1),
                              []).append(site.index)
        aliased = set()
        for members in groups.values():
            if len(members) > 1:
                aliased.update(members)
        return aliased

    def summary_rows(self):
        """Rows (index, line, class, stride, loop-header line, depth)
        for the CLI ``--addr`` table."""
        rows = []
        instrs = self.program.instructions
        for site in self.sites:
            if site.loop is not None:
                header_ins = instrs[site.loop.header]
                loop_line = header_ins.line if header_ins.line \
                    is not None else 0
                depth = site.loop.depth
            else:
                loop_line = "-"
                depth = 0
            stride = site.stride if site.stride is not None else "?"
            if site.cls in (CLASS_CHASE, CLASS_IRREGULAR,
                            CLASS_STRAIGHT):
                stride = "-"
            rows.append([site.index,
                         site.line if site.line is not None else 0,
                         site.cls, stride, loop_line, depth])
        return rows


# ----------------------------------------------------------------------
# Satellite: loads whose address registers may be undefined.
# ----------------------------------------------------------------------

def check_addr_untracked(program, cfg, file="<program>"):
    """Loads whose address registers are never defined on some path.

    A refinement of the generic ``uninit-read``: when the *address* of
    a load is the possibly-undefined value, the whole per-PC address
    stream is untrackable, so the site is additionally flagged for the
    address-classification pass.  Reuses the definite-assignment facts.
    """
    instrs = program.instructions
    if not cfg.n:
        return []
    live_in = definite_assignment(program, cfg)
    findings = []
    for i in sorted(cfg.reachable):
        ins = instrs[i]
        if not ins.is_load:
            continue
        mask = live_in[i]
        # For a load, reg_reads is exactly the address registers.
        for r in reg_reads(ins):
            if not (mask >> r) & 1:
                findings.append(Finding(
                    "addr-untracked",
                    "load address register %s is never defined on some "
                    "path from the entry point; the address stream of "
                    "this load cannot be classified" % (reg_name(r),),
                    file=file, line=ins.line, index=i,
                    severity=SEV_WARNING))
    return findings


# ----------------------------------------------------------------------
# Dynamic cross-check against per-PC predictor histograms.
# ----------------------------------------------------------------------

class AddressCheck:
    """Result of :func:`cross_check` for one (program, trace) pair."""

    __slots__ = ("violations", "checked_sites", "skipped_aliased",
                 "skipped_short", "coverage_bound", "dynamic_coverage",
                 "steady_accuracy", "predictable_share", "loads")

    def __init__(self):
        self.violations = []
        self.checked_sites = 0
        self.skipped_aliased = 0
        self.skipped_short = 0
        self.coverage_bound = 1.0
        self.dynamic_coverage = 0.0
        self.steady_accuracy = 0.0
        self.predictable_share = 0.0
        self.loads = 0

    @property
    def ok(self):
        return not self.violations


def count_loop_entries(trace, loops):
    """Dynamic entries into each loop: positions where the header
    executes and the previous dynamic instruction was outside the
    body.  One pass over the static-index stream; headers are unique
    per loop (back edges sharing a header were merged)."""
    by_header = {loop.header: loop for loop in loops}
    entries = dict.fromkeys(by_header, 0)
    if not by_header:
        return entries
    prev = None
    for s in trace.sidx:
        loop = by_header.get(s)
        if loop is not None and (prev is None or prev not in loop.body):
            entries[s] += 1
        prev = s
    return entries


def cross_check(classification, trace, result, table_entries=4096):
    """Verify the static classification against a dynamic predictor run.

    ``result`` must come from
    ``run_address_predictor(trace, per_pc=True)`` on a trace of the
    classified program.  Returns an :class:`AddressCheck`; its
    ``violations`` are human-readable strings, empty when every
    assertion holds.

    The delta-change budget of a predictable site is derived from the
    *dynamic entry count* of its innermost loop: within one run of the
    loop the statically-proved stride is constant, and each re-entry
    (the enclosing loop starting the pattern over) costs at most
    :data:`RELOCK_MISSES` delta changes — the jump to the new base plus
    the first in-run delta.  A site whose stream changes delta more
    often than that is not constant-stride inside its loop, no matter
    what the classifier believed.
    """
    check = AddressCheck()
    per_pc = result.per_pc
    if per_pc is None:
        raise ValueError("cross_check needs per-PC stats: run the "
                         "predictor with per_pc=True")
    aliased = classification.aliased_indices(table_entries)
    site_loops = {site.loop for site in classification.sites
                  if site.cls in PREDICTABLE_CLASSES
                  and site.loop is not None}
    entries = count_loop_entries(trace, site_loops)
    warm_correct = 0
    warm_total = 0
    for site in classification.sites:
        if site.cls not in PREDICTABLE_CLASSES:
            continue
        stat = per_pc.get(site.pc)
        if stat is None:
            continue
        if site.index in aliased:
            check.skipped_aliased += 1
            continue
        if stat.count < MIN_OBSERVATIONS:
            check.skipped_short += 1
            continue
        check.checked_sites += 1
        warm = max(0, stat.count - WARMUP_MISSES)
        warm_correct += min(stat.correct, warm)
        warm_total += warm
        floor = stat.count - WARMUP_MISSES \
            - RELOCK_MISSES * stat.delta_changes
        if stat.correct < floor:
            check.violations.append(
                "line %s: load #%d (%s) broke the two-delta re-lock "
                "bound: %d/%d correct, floor %d with %d delta changes"
                % (site.line, site.index, site.cls, stat.correct,
                   stat.count, floor, stat.delta_changes))
        loop_entries = entries.get(site.loop.header, 1)
        budget = STABILITY_BASE + RELOCK_MISSES * loop_entries
        if stat.delta_changes > budget:
            check.violations.append(
                "line %s: load #%d classified %s but its address "
                "stream changed delta %d times over %d loads across "
                "%d loop entries (budget %d) — statically claimed "
                "constant stride is not constant within the loop"
                % (site.line, site.index, site.cls, stat.delta_changes,
                   stat.count, loop_entries, budget))
    if warm_total:
        check.steady_accuracy = warm_correct / warm_total
    # Aggregate coverage bound: static class caps vs the dynamic
    # fraction of loads whose prediction the confidence gate used.
    check.loads = result.loads
    if result.loads:
        attempted = sum(1 for used in result.attempted.values() if used)
        check.dynamic_coverage = attempted / result.loads
        check.coverage_bound = classification.coverage_bound(trace)
        counts = classification.dynamic_class_counts(trace)
        predictable = sum(counts[c] for c in PREDICTABLE_CLASSES)
        total = sum(counts.values())
        check.predictable_share = predictable / total if total else 0.0
        if check.coverage_bound < check.dynamic_coverage:
            check.violations.append(
                "static coverage bound %.3f < dynamic predictor "
                "coverage %.3f — a chase/irregular class cap is "
                "violated or loads are misclassified"
                % (check.coverage_bound, check.dynamic_coverage))
    return check


__all__ = [
    "ALL_CLASSES", "AddressCheck", "AddressClassification",
    "CLASS_AFFINE", "CLASS_CHASE", "CLASS_INVARIANT", "CLASS_IRREGULAR",
    "CLASS_STRAIGHT", "CLASS_STRIDE", "COVERAGE_CAP", "LoadSite",
    "MIN_OBSERVATIONS", "PREDICTABLE_CLASSES", "RELOCK_MISSES",
    "WARMUP_MISSES", "check_addr_untracked", "count_loop_entries",
    "cross_check",
]
