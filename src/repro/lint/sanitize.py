"""Runtime scheduler sanitizer (``--sanitize``).

:class:`SchedulerSanitizer` rides along inside
:class:`~repro.core.scheduler.WindowScheduler` and re-checks, from its
own independent bookkeeping, the model invariants the paper's schedule
semantics promise (the always-on version of ``test_scheduler_verify``):

- at most ``issue_width`` instructions issue per cycle;
- window occupancy never exceeds ``window_size``, and fetch never
  proceeds past an unissued mispredicted branch;
- no instruction issues before the completion times of its producers —
  where "producers" are re-derived here from the trace's architectural
  state in program order, *minus* the relaxations the scheduler reports
  (collapse merges, correct load-address speculation, value-speculation
  bypasses, node elimination);
- every reported collapse merge satisfies the
  :class:`~repro.collapse.rules.CollapseRules` device limits
  (``max_group`` members, ``max_leaves`` operands, the one-extra-member
  zero-detection exception);
- instructions following a mispredicted branch issue strictly after it;
- every position enters and issues exactly once and the window drains;
- under realistic disambiguation (``mem_spec == "mdpt"``) every reported
  speculation, violation and squash is re-validated against the
  sanitizer's own last-store map, and the *memory-order recovery
  invariant* holds at the end of the run: no load's final issue cycle
  precedes the completion of the last program-order store to its word
  (i.e. no committed load kept a stale value);
- under squash/replay value speculation (``value_spec == "replay"``,
  configuration I): every reported squash names a consumer that had
  issued while riding a wrong-predicted load value, each squashed
  consumer replays exactly once (the run cannot end with a squashed,
  un-replayed position), and the *value recovery invariant* holds at
  the end of the run: no consumer that speculated on a wrong value
  kept a final issue cycle earlier than the watched load's completion
  (i.e. no stale speculative value was committed);
- under load-driven exit-branch prediction (``config.branch_spec``,
  configuration J): every waived fetch fence names a conditional
  branch the static :class:`~repro.lint.branchflow.BranchPlan` maps to
  a governing load, the resolving position is an earlier, entered
  dynamic instance of exactly that load, and each branch position
  resolves at most once (exactly-once recovery: a waived fence can
  never be waived again, nor re-block fetch);
- under decoupled access/execute (``config.dae``, configuration H):
  only statically access-slice members bypass into the access window,
  access-window occupancy never exceeds ``window_size``, every queue
  entry is a boundary load of its loop, per-loop queue occupancy never
  exceeds the plan's static depth, queue pops preserve FIFO order, and
  no execute-side consumer pops a queue entry before the entry's load
  completed.

The sanitizer maintains its own register/memory last-writer map and per
-position requirement sets, so a scheduler bug in arc construction or
readiness tracking surfaces as a violation rather than silently skewing
IPC.  Violations accumulate and :meth:`finish` raises
:class:`SanitizeError`; a completed sanitized run therefore implies
zero violations.
"""

from ..errors import ReproError
from ..trace.records import BRC, CTI, LD, ST

_KIND_ADDR = 0
_KIND_OTHER = 1


class SanitizeError(ReproError):
    """Raised when a sanitized run violates a model invariant."""


class SchedulerSanitizer:
    """Invariant checker attached to one scheduler run."""

    #: cap on recorded violation messages (the count keeps rising)
    MAX_RECORDED = 20

    def __init__(self, trace, config, mispredicted=None, dae_plan=None,
                 branch_plan=None):
        self.trace = trace
        self.config = config
        self.mispredicted = mispredicted if mispredicted is not None \
            else {}
        self.violations = []
        self.violation_count = 0
        #: counters reported by :meth:`summary`
        self.checked_instructions = 0
        self.checked_merges = 0
        self.relaxed_arcs = 0
        self.mem_syncs = 0
        self.mem_speculations = 0
        self.mem_violations = 0
        self.mem_squashes = 0
        self.value_speculations = 0
        self.value_squashes = 0
        self.dae_bypasses = 0
        self.dae_enqueues = 0
        self.dae_pops = 0
        self.branch_resolves = 0

        static = trace.static
        self._sidx = trace.sidx
        self._eff_addr = trace.eff_addr
        self._cls = static.cls
        self._lat = static.lat
        self._dest = static.dest
        self._src1 = static.src1
        self._src2 = static.src2
        self._datasrc = static.datasrc
        self._writes_cc = static.writes_cc
        self._reads_cc = static.reads_cc

        n = len(trace)
        self._n = n
        self._reg_writer = [-1] * 33
        self._mem_writer = {}
        self._require = {}         # pos -> set of (producer, kind)
        self._consumers = {}       # producer -> set of consumers
        self._issue_cycle = [None] * n
        self._completion = [None] * n
        self._entered = [False] * n
        self._eliminated = set()
        self._mem_realistic = config.mem_spec == "mdpt"
        self._mem_dep = {}         # load pos -> last prior same-word store
        self._squashed = set()     # squashed, awaiting replay
        self._value_watch = {}     # consumer -> wrong-value loads ridden
        self._occupancy = 0
        self._fence_pos = None     # latest mispredicted branch entered
        self._fence_issue = None
        self._cycle = -1
        self._issued_this_cycle = 0
        #: configuration-J replica state: the static plan plus the set
        #: of branch positions whose fence was already waived
        self._branch_plan = branch_plan \
            if getattr(config, "branch_spec", False) else None
        self._branch_resolved = set()
        #: DAE (configuration H) replica state; the hooks also work
        #: plan-less (bookkeeping only, no membership checks)
        self._dae_plan = dae_plan if config.dae else None
        self._dae_bypassed = set()
        self._access_occupancy = 0
        self._dae_queues = {}      # loop header -> FIFO replica (list)

    # ------------------------------------------------------------------

    def _violate(self, message):
        self.violation_count += 1
        if len(self.violations) < self.MAX_RECORDED:
            self.violations.append(message)

    def _arcs(self, i):
        """Model-defined producer arcs of position ``i``, re-derived
        from the sanitizer's own architectural replay."""
        s = self._sidx[i]
        cls = self._cls[s]
        expr_kind = _KIND_ADDR if cls == LD or cls == ST else _KIND_OTHER
        arcs = set()
        reg_writer = self._reg_writer
        src1 = self._src1[s]
        src2 = self._src2[s]
        if src1 >= 0 and reg_writer[src1] >= 0:
            arcs.add((reg_writer[src1], expr_kind))
        if src2 >= 0 and src2 != src1 and reg_writer[src2] >= 0:
            arcs.add((reg_writer[src2], expr_kind))
        if cls == ST:
            data_reg = self._datasrc[s]
            if data_reg >= 0 and reg_writer[data_reg] >= 0:
                arcs.add((reg_writer[data_reg], _KIND_OTHER))
        if self._reads_cc[s] and reg_writer[32] >= 0:
            arcs.add((reg_writer[32], _KIND_OTHER))
        if cls == LD:
            p = self._mem_writer.get(self._eff_addr[i] >> 2, -1)
            if p >= 0:
                arcs.add((p, _KIND_OTHER))
        return arcs

    # -- hooks called by the scheduler ---------------------------------

    def on_enter(self, i, cycle):
        """Position ``i`` enters the window at ``cycle``."""
        if self._entered[i]:
            self._violate("position %d entered the window twice" % (i,))
            return
        self._entered[i] = True
        self.checked_instructions += 1
        if self._fence_pos is not None and self._fence_issue is None \
                and i > self._fence_pos:
            self._violate(
                "position %d fetched past unissued mispredicted branch "
                "at position %d" % (i, self._fence_pos))
        if i in self._dae_bypassed:
            self._access_occupancy += 1
            if self._access_occupancy > self.config.window_size:
                self._violate(
                    "access window occupancy %d exceeds size %d at "
                    "position %d" % (self._access_occupancy,
                                     self.config.window_size, i))
        else:
            self._occupancy += 1
            if self._occupancy > self.config.window_size:
                self._violate(
                    "window occupancy %d exceeds size %d at position %d"
                    % (self._occupancy, self.config.window_size, i))
        require = self._arcs(i)
        if self._cls[self._sidx[i]] == LD:
            p = self._mem_writer.get(self._eff_addr[i] >> 2, -1)
            if p >= 0:
                self._mem_dep[i] = p
                if self._mem_realistic:
                    # The scheduler speculates past the store; the arc is
                    # checked by the end-of-run memory-order invariant
                    # instead of at issue.  (For a load, (p, OTHER) can
                    # only be the memory arc.)
                    require.discard((p, _KIND_OTHER))
        self._require[i] = require
        for p, _ in require:
            self._consumers.setdefault(p, set()).add(i)
        # Architectural update, program order (mirrors the emulator).
        s = self._sidx[i]
        dest = self._dest[s]
        if dest >= 0:
            self._reg_writer[dest] = i
        if self._writes_cc[s]:
            self._reg_writer[32] = i
        cls = self._cls[s]
        if cls == ST:
            self._mem_writer[self._eff_addr[i] >> 2] = i
        if (cls == BRC or cls == CTI) and i in self.mispredicted:
            self._fence_pos = i
            self._fence_issue = None

    def on_collapse(self, i, p, kind, group):
        """The scheduler merged producer ``p`` into consumer ``i``'s
        dependence expression; ``i`` inherits ``p``'s own producers."""
        self.checked_merges += 1
        rules = self.config.collapse_rules
        arc = (p, kind)
        require = self._require.get(i)
        if require is None or arc not in require:
            self._violate(
                "collapse of %d into %d relaxes a dependence arc the "
                "model does not define" % (p, i))
        else:
            require.discard(arc)
            self._consumers.get(p, set()).discard(i)
            for q, _ in self._require.get(p, ()):
                require.add((q, kind))
                self._consumers.setdefault(q, set()).add(i)
            self.relaxed_arcs += 1
        if rules is None:
            self._violate("collapse event with collapsing disabled")
            return
        size = group.size
        limit = rules.max_group
        if rules.zero_detection:
            if size > limit + 1:
                self._violate(
                    "merged group at %d has %d members (max %d, +1 with "
                    "zero detection)" % (i, size, limit))
            elif size > limit and not (group.raw_leaves > group.leaves
                                       and group.leaves
                                       <= rules.max_leaves):
                self._violate(
                    "oversized group at %d not justified by zero "
                    "detection" % (i,))
            if group.leaves > rules.max_leaves:
                self._violate(
                    "merged group at %d has %d operands (max_leaves %d)"
                    % (i, group.leaves, rules.max_leaves))
        else:
            if size > limit:
                self._violate(
                    "merged group at %d has %d members (max %d)"
                    % (i, size, limit))
            if group.raw_leaves > rules.max_leaves:
                self._violate(
                    "merged group at %d has %d raw operands "
                    "(max_leaves %d, no zero detection)"
                    % (i, group.raw_leaves, rules.max_leaves))

    def on_load_spec(self, i):
        """Load ``i`` uses a (correct or ideal) predicted address: its
        address-generation dependences are dropped."""
        require = self._require.get(i)
        if require is None:
            self._violate("load speculation on unentered position %d"
                          % (i,))
            return
        dropped = {arc for arc in require if arc[1] == _KIND_ADDR}
        for arc in dropped:
            require.discard(arc)
            self._consumers.get(arc[0], set()).discard(i)
        self.relaxed_arcs += len(dropped)

    def on_value_bypass(self, i, p, kind):
        """Consumer ``i`` uses the correctly predicted value of load
        ``p`` and does not wait for it."""
        require = self._require.get(i)
        if require is not None:
            require.discard((p, kind))
            self._consumers.get(p, set()).discard(i)
        self.relaxed_arcs += 1

    def on_value_speculate(self, i, p, kind):
        """Consumer ``i`` drops its arc to load ``p`` on a *wrong*
        confident prediction: it may issue on the bad value and must be
        squashed and replayed when ``p``'s verification exposes it."""
        self.value_speculations += 1
        if self._cls[self._sidx[p]] != LD:
            self._violate(
                "value speculation of %d reported against position %d, "
                "which is not a load" % (i, p))
        require = self._require.get(i)
        if require is None:
            self._violate("value speculation on unentered position %d"
                          % (i,))
            return
        require.discard((p, kind))
        self._consumers.get(p, set()).discard(i)
        self.relaxed_arcs += 1
        self._value_watch.setdefault(i, set()).add(p)

    def on_value_squash(self, w, p, cycle):
        """Consumer ``w`` is squashed for replay: it issued riding the
        wrong-predicted value of load ``p``, whose verification fired."""
        self.value_squashes += 1
        if p not in self._value_watch.get(w, ()):
            self._violate(
                "value squash of %d against load %d it never "
                "speculated on" % (w, p))
        if self._issue_cycle[w] is None:
            self._violate(
                "position %d value-squashed without having issued"
                % (w,))
            return
        self._issue_cycle[w] = None
        self._completion[w] = None
        self._squashed.add(w)

    def on_branch_resolve(self, i, p, cycle):
        """Mispredicted exit branch ``i``'s fetch fence is waived: its
        direction resolved at governing-load instance ``p``'s
        address-generation time (configuration J)."""
        self.branch_resolves += 1
        plan = self._branch_plan
        s = self._sidx[i]
        if plan is None or s not in plan.resolves:
            self._violate(
                "branch resolve at position %d, which the static plan "
                "does not map to a governing load" % (i,))
        elif self._sidx[p] != plan.resolves[s]:
            self._violate(
                "branch %d resolved by position %d (static #%d), but "
                "the plan names load #%d as its governor"
                % (i, p, self._sidx[p], plan.resolves[s]))
        if p >= i or not self._entered[p]:
            self._violate(
                "branch %d resolved by position %d that is not an "
                "earlier entered instruction" % (i, p))
        if i in self._branch_resolved:
            self._violate("branch %d resolved twice" % (i,))
            return
        self._branch_resolved.add(i)
        if i not in self.mispredicted:
            self._violate(
                "branch %d resolved a fence it never raised (it was "
                "predicted correctly)" % (i,))
        if self._fence_pos == i:
            # The fence this branch raised on entry is waived; fetch
            # may proceed as if the branch were predicted correctly.
            self._fence_pos = None
            self._fence_issue = None

    def on_eliminate(self, p, cycle):
        """Producer ``p`` is removed without executing (its sole reader
        absorbed its expression)."""
        if self._issue_cycle[p] is not None:
            self._violate("position %d eliminated after issuing" % (p,))
        waiting = {c for c in self._consumers.get(p, ())
                   if self._issue_cycle[c] is None
                   and any(arc[0] == p
                           for arc in self._require.get(c, ()))}
        if waiting:
            self._violate(
                "position %d eliminated while positions %s still "
                "depend on it"
                % (p, sorted(waiting)[:4]))
        self._eliminated.add(p)
        self._issue_cycle[p] = cycle
        self._completion[p] = cycle
        if p in self._dae_bypassed:
            self._dae_bypassed.discard(p)
            self._access_occupancy -= 1
        else:
            self._occupancy -= 1
        # An eliminated position can no longer be merged into, so its
        # requirement set is dead (mirrors on_issue).
        self._require.pop(p, None)
        self._consumers.pop(p, None)

    def on_mem_sync(self, i, store):
        """Load ``i`` synchronizes (MDST) with an in-flight ``store``."""
        self.mem_syncs += 1
        if store >= i or not self._entered[store]:
            self._violate(
                "load %d synchronized with store %d that is not an "
                "earlier entered instruction" % (i, store))

    def on_mem_speculate(self, load, store, cycle):
        """Load issued before ``store`` (its producer) completed."""
        self.mem_speculations += 1
        if self._mem_dep.get(load, -1) != store:
            self._violate(
                "speculation of load %d reported against store %d, but "
                "the model defines store %d as its producer"
                % (load, store, self._mem_dep.get(load, -1)))

    def on_violation(self, load, store, cycle):
        """A memory-order violation of ``load`` against ``store`` fired."""
        self.mem_violations += 1
        if self._mem_dep.get(load, -1) != store:
            self._violate(
                "violation of load %d reported against store %d, but "
                "the model defines store %d as its producer"
                % (load, store, self._mem_dep.get(load, -1)))
            return
        li = self._issue_cycle[load]
        sc = self._completion[store]
        if li is None or sc is None or li >= sc:
            self._violate(
                "reported violation of load %d (issued %s) against "
                "store %d (completes %s) is not a memory-order "
                "violation" % (load, li, store, sc))

    def on_squash(self, p, cycle):
        """Position ``p`` is squashed for replay after a violation."""
        self.mem_squashes += 1
        if self._issue_cycle[p] is None:
            self._violate("position %d squashed without having issued"
                          % (p,))
            return
        self._issue_cycle[p] = None
        self._completion[p] = None
        self._squashed.add(p)

    # -- decoupled access/execute hooks (configuration H) --------------

    def on_dae_bypass(self, i):
        """Position ``i`` is about to enter the *access* window instead
        of the (full) main window."""
        self.dae_bypasses += 1
        if self._entered[i]:
            self._violate("position %d bypassed after already entering "
                          "the window" % (i,))
        plan = self._dae_plan
        if plan is not None and self._sidx[i] not in plan.access_of:
            self._violate(
                "position %d bypassed into the access window but is "
                "not an access-slice member of any clean loop" % (i,))
        self._dae_bypassed.add(i)

    def on_dae_enqueue(self, header, i, cycle):
        """Boundary load ``i`` pushes its value into loop ``header``'s
        FIFO queue."""
        self.dae_enqueues += 1
        plan = self._dae_plan
        if plan is not None \
                and plan.boundary_of.get(self._sidx[i]) != header:
            self._violate(
                "position %d enqueued on loop #%d's queue but is not "
                "one of its boundary loads" % (i, header))
        queue = self._dae_queues.setdefault(header, [])
        queue.append(i)
        if plan is not None:
            depth = plan.capacity.get(header)
            if depth is not None and len(queue) > depth:
                self._violate(
                    "loop #%d queue holds %d entries, static depth "
                    "bound is %d" % (header, len(queue), depth))

    def on_dae_deliver(self, entry, consumer, cycle):
        """Queue entry ``entry`` is consumed by execute-side
        ``consumer`` issuing at ``cycle`` (or reclaimed dead when
        ``consumer`` is -1)."""
        if consumer < 0:
            return                  # architectural reclaim: no timing
        comp = self._completion[entry]
        if comp is None:
            self._violate(
                "queue entry %d delivered to consumer %d before the "
                "load issued at all" % (entry, consumer))
        elif comp > cycle:
            self._violate(
                "execute consumer %d issued at cycle %d before queue "
                "entry %d completes at %d"
                % (consumer, cycle, entry, comp))

    def on_dae_pop(self, header, entry, cycle):
        """Entry ``entry`` leaves the head of loop ``header``'s queue."""
        self.dae_pops += 1
        queue = self._dae_queues.get(header)
        if not queue or queue[0] != entry:
            self._violate(
                "pop of entry %d violates FIFO order on loop #%d's "
                "queue (head: %s)"
                % (entry, header, queue[0] if queue else "empty"))
            if queue and entry in queue:
                queue.remove(entry)
        else:
            queue.pop(0)

    def on_issue(self, i, cycle):
        """Position ``i`` issues at ``cycle``."""
        reissue = i in self._squashed
        if reissue:
            self._squashed.discard(i)
        if not self._entered[i]:
            self._violate("position %d issued without entering the "
                          "window" % (i,))
        if self._issue_cycle[i] is not None:
            self._violate("position %d issued twice" % (i,))
        if cycle < self._cycle:
            self._violate("issue cycle moved backwards (%d after %d)"
                          % (cycle, self._cycle))
        if cycle != self._cycle:
            self._cycle = cycle
            self._issued_this_cycle = 0
        self._issued_this_cycle += 1
        if self._issued_this_cycle > self.config.issue_width:
            self._violate(
                "cycle %d issued %d instructions (width %d)"
                % (cycle, self._issued_this_cycle,
                   self.config.issue_width))
        for p, _ in self._require.get(i, ()):
            comp = self._completion[p]
            if self._issue_cycle[p] is None or comp is None:
                self._violate(
                    "position %d issued before its producer %d"
                    % (i, p))
            elif comp > cycle:
                self._violate(
                    "position %d issued at cycle %d before producer "
                    "%d completes at %d" % (i, cycle, p, comp))
        if self._fence_pos is not None and i > self._fence_pos:
            if self._fence_issue is None:
                self._violate(
                    "position %d issued while mispredicted branch %d "
                    "is unissued" % (i, self._fence_pos))
            elif cycle <= self._fence_issue:
                self._violate(
                    "position %d issued at cycle %d, not after "
                    "mispredicted branch %d (issued %d)"
                    % (i, cycle, self._fence_pos, self._fence_issue))
        if i == self._fence_pos and self._fence_issue is None:
            self._fence_issue = cycle
        self._issue_cycle[i] = cycle
        self._completion[i] = cycle + self._lat[self._sidx[i]]
        if not reissue:
            # A replay re-uses the window slot freed at first issue.
            if i in self._dae_bypassed:
                self._dae_bypassed.discard(i)
                self._access_occupancy -= 1
            else:
                self._occupancy -= 1
        # Issued positions can no longer be merged into, so the
        # requirement set has served its purpose; keep memory bounded
        # by the window size rather than the trace length.
        self._require.pop(i, None)

    # ------------------------------------------------------------------

    def finish(self):
        """End-of-run checks; raises on any accumulated violation."""
        for i in range(self._n):
            if not self._entered[i]:
                self._violate("position %d never entered the window"
                              % (i,))
            elif self._issue_cycle[i] is None:
                self._violate("position %d never issued" % (i,))
        if self._squashed:
            self._violate(
                "positions %s squashed but never replayed"
                % (sorted(self._squashed)[:4],))
        # Memory-order recovery invariant: no committed load reads a
        # value older than the last program-order store to its address.
        for i, p in sorted(self._mem_dep.items()):
            if i in self._eliminated or p in self._eliminated:
                continue
            li = self._issue_cycle[i]
            pc = self._completion[p]
            if li is None or pc is None:
                continue
            if li < pc:
                self._violate(
                    "load %d finally issued at cycle %d before the last "
                    "prior store to its word (position %d) completed at "
                    "%d: stale value committed" % (i, li, p, pc))
        # Value recovery invariant: a consumer that rode a wrong
        # prediction must have finally issued no earlier than the
        # watched load's completion — the replay (or the released wait)
        # re-imposed the architectural value.
        for w, loads in sorted(self._value_watch.items()):
            if w in self._eliminated:
                continue
            li = self._issue_cycle[w]
            for p in sorted(loads):
                if p in self._eliminated:
                    continue
                pc = self._completion[p]
                if li is None or pc is None:
                    continue
                if li < pc:
                    self._violate(
                        "consumer %d finally issued at cycle %d before "
                        "the wrong-predicted load %d it rode completed "
                        "at %d: stale speculative value committed"
                        % (w, li, p, pc))
        if self._occupancy != 0 and not self.violations:
            self._violate("window occupancy %d at end of run"
                          % (self._occupancy,))
        if self._access_occupancy != 0 and not self.violations:
            self._violate("access window occupancy %d at end of run"
                          % (self._access_occupancy,))
        if self.violation_count:
            shown = "\n  ".join(self.violations)
            more = self.violation_count - len(self.violations)
            if more > 0:
                shown += "\n  ... and %d more" % (more,)
            raise SanitizeError(
                "sanitizer found %d invariant violation%s in %s:\n  %s"
                % (self.violation_count,
                   "" if self.violation_count == 1 else "s",
                   self.trace.name or "<trace>", shown))

    def summary(self):
        text = ("sanitize: %d instructions, %d merges, %d relaxed arcs "
                "checked; %d violations"
                % (self.checked_instructions, self.checked_merges,
                   self.relaxed_arcs, self.violation_count))
        if self._mem_realistic:
            text += ("; memdep: %d syncs, %d speculations, %d squash "
                     "events replay-verified"
                     % (self.mem_syncs, self.mem_speculations,
                        self.mem_violations))
        if self.value_speculations or self.value_squashes:
            text += ("; vspec: %d speculations, %d squash/replay pairs "
                     "verified" % (self.value_speculations,
                                   self.value_squashes))
        if self.dae_bypasses or self.dae_enqueues:
            text += ("; dae: %d bypasses, %d enqueues, %d FIFO pops "
                     "checked" % (self.dae_bypasses, self.dae_enqueues,
                                  self.dae_pops))
        if self.branch_resolves:
            text += ("; bspec: %d exit-branch fences waived exactly "
                     "once" % (self.branch_resolves,))
        return text


__all__ = ["SchedulerSanitizer", "SanitizeError"]
