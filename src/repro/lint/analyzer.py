"""Lint driver: run every registered pass over a program, source text,
file or registered workload and collect a :class:`LintReport`.

Passes live on the declarative registry (:mod:`repro.lint.registry`):
the driver builds the CFG once, wraps it in a
:class:`~repro.lint.registry.LintContext` and iterates
:func:`~repro.lint.registry.lint_passes` in order, so a new analysis
only has to call :func:`~repro.lint.registry.register_lint_pass` to
appear in ``repro lint`` / ``--all`` output.

An assembly failure is itself a located finding (check ``assemble``)
rather than an exception, so ``repro lint`` reports broken files in the
same ``file:line`` format as semantic findings.
"""

from ..asm.assembler import assemble
from ..errors import AssemblyError
from .addrclass import AddressClassification, check_addr_untracked
from .cfg import ControlFlowGraph
from .collapse_bound import StaticCollapseBound
from .dae import DAEAnalysis
from .dataflow import (
    check_assignment,
    check_dead_results,
    check_off_end,
    check_unreachable,
)
from .branchflow import BranchFlowAnalysis
from .findings import Finding, LintReport
from .memdep import MemDepBound
from .recurrence import RecurrenceAnalysis
from .registry import LintContext, lint_passes, register_lint_pass
from .valueflow import ValueFlowAnalysis

#: check name -> callable(program, cfg, file) for the dataflow passes
LINT_CHECKS = {
    "uninit-read": check_assignment,       # also emits cc-missing
    "dead-store": check_dead_results,
    "unreachable": check_unreachable,
    "fallthrough-end": check_off_end,
    "addr-untracked": check_addr_untracked,
}


@register_lint_pass("dataflow", "register/cc dataflow checks", order=10,
                    flags=())
def _pass_dataflow(ctx):
    findings = []
    for check in (check_unreachable, check_off_end, check_assignment,
                  check_dead_results, check_addr_untracked):
        findings.extend(check(ctx.program, ctx.cfg, file=ctx.file))
    return findings


@register_lint_pass("collapse-bound", "static collapse opportunities",
                    order=20, flags=("--bounds", "--cross-check"))
def _pass_collapse_bound(ctx):
    ctx.report.collapse_bound = StaticCollapseBound(
        ctx.program, rules=ctx.rules, cfg=ctx.cfg)
    return ()


@register_lint_pass("addr-class", "load address classification", order=30,
                    flags=("--addr", "--addr-check"))
def _pass_addr_class(ctx):
    classes = AddressClassification(ctx.program, ctx.cfg)
    ctx.shared["addr_classes"] = classes
    ctx.report.addr_classes = classes
    return ()


@register_lint_pass("valueflow", "result-value predictability", order=35,
                    flags=("--value", "--value-check"))
def _pass_valueflow(ctx):
    classes = ctx.shared["addr_classes"]
    valueflow = ValueFlowAnalysis(ctx.program, cfg=ctx.cfg,
                                  forest=classes.forest,
                                  values=classes.values)
    ctx.shared["valueflow"] = valueflow
    ctx.report.valueflow = valueflow
    return ()


@register_lint_pass("recurrence", "loop recurrence (recMII) bounds",
                    order=40, flags=("--recur", "--recur-check"))
def _pass_recurrence(ctx):
    classes = ctx.shared["addr_classes"]
    recurrence = RecurrenceAnalysis(ctx.program, cfg=ctx.cfg,
                                    forest=classes.forest,
                                    classes=classes,
                                    valueflow=ctx.shared["valueflow"])
    ctx.shared["recurrence"] = recurrence
    ctx.report.recurrence = recurrence
    return recurrence.findings(file=ctx.file)


@register_lint_pass("branchflow", "branch predictability", order=45,
                    flags=("--branch", "--branch-check"))
def _pass_branchflow(ctx):
    classes = ctx.shared["addr_classes"]
    branchflow = BranchFlowAnalysis(ctx.program, cfg=ctx.cfg,
                                    forest=classes.forest,
                                    values=classes.values,
                                    addr_classes=classes)
    ctx.shared["branchflow"] = branchflow
    ctx.report.branchflow = branchflow
    return ()


@register_lint_pass("memdep", "may-alias conflict pairs", order=50,
                    flags=("--memdep", "--memdep-check"))
def _pass_memdep(ctx):
    classes = ctx.shared["addr_classes"]
    ctx.report.memdep_bound = MemDepBound(ctx.program, cfg=ctx.cfg,
                                          forest=classes.forest,
                                          values=classes.values)
    return ()


@register_lint_pass("dae", "access/execute loop slicing", order=60,
                    flags=("--dae", "--dae-check"))
def _pass_dae(ctx):
    dae = DAEAnalysis(ctx.program, cfg=ctx.cfg,
                      recurrence=ctx.shared["recurrence"])
    ctx.report.dae = dae
    return dae.findings(file=ctx.file)


def lint_program(program, target="<program>", rules=None):
    """Run all registered passes over an assembled program."""
    cfg = ControlFlowGraph(program)
    report = LintReport(target, [])
    report.instructions = cfg.n
    report.blocks = len(cfg.leaders)
    ctx = LintContext(program, cfg, target, rules, report)
    for lint_pass in lint_passes():
        found = lint_pass.run(ctx)
        if found:
            report.extend(found)
    return report


def lint_source(text, target="<source>", rules=None):
    """Assemble source text and lint it; assembly errors become
    findings."""
    try:
        program = assemble(text)
    except AssemblyError as exc:
        report = LintReport(target, [Finding(
            "assemble", exc.bare_message, file=target, line=exc.line)])
        return report
    return lint_program(program, target=target, rules=rules)


def lint_path(path, rules=None):
    """Lint one ``.s`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return lint_source(text, target=str(path), rules=rules)


def lint_workload(name, scale=0.05, rules=None):
    """Lint the assembly a registered workload generates at ``scale``."""
    from ..workloads.registry import get_workload
    workload = get_workload(name)
    program = workload.build(scale=scale)
    return lint_program(program, target="<workload:%s>" % (name,),
                        rules=rules)


__all__ = ["lint_program", "lint_source", "lint_path", "lint_workload",
           "LINT_CHECKS"]
