"""Lint driver: run every check over a program, source text, file or
registered workload and collect a :class:`LintReport`.

An assembly failure is itself a located finding (check ``assemble``)
rather than an exception, so ``repro lint`` reports broken files in the
same ``file:line`` format as semantic findings.
"""

from ..asm.assembler import assemble
from ..errors import AssemblyError
from .addrclass import AddressClassification, check_addr_untracked
from .cfg import ControlFlowGraph
from .collapse_bound import StaticCollapseBound
from .dataflow import (
    check_assignment,
    check_dead_results,
    check_off_end,
    check_unreachable,
)
from .findings import Finding, LintReport
from .memdep import MemDepBound
from .recurrence import RecurrenceAnalysis

#: check name -> callable(program, cfg, file) for the dataflow passes
LINT_CHECKS = {
    "uninit-read": check_assignment,       # also emits cc-missing
    "dead-store": check_dead_results,
    "unreachable": check_unreachable,
    "fallthrough-end": check_off_end,
    "addr-untracked": check_addr_untracked,
}


def lint_program(program, target="<program>", rules=None):
    """Run all static checks over an assembled program."""
    cfg = ControlFlowGraph(program)
    findings = []
    for check in (check_unreachable, check_off_end, check_assignment,
                  check_dead_results, check_addr_untracked):
        findings.extend(check(program, cfg, file=target))
    addr_classes = AddressClassification(program, cfg)
    recurrence = RecurrenceAnalysis(program, cfg=cfg,
                                    forest=addr_classes.forest,
                                    classes=addr_classes)
    findings.extend(recurrence.findings(file=target))
    report = LintReport(target, findings)
    report.instructions = cfg.n
    report.blocks = len(cfg.leaders)
    report.collapse_bound = StaticCollapseBound(program, rules=rules,
                                               cfg=cfg)
    report.addr_classes = addr_classes
    report.recurrence = recurrence
    report.memdep_bound = MemDepBound(program, cfg=cfg,
                                      forest=addr_classes.forest,
                                      values=addr_classes.values)
    return report


def lint_source(text, target="<source>", rules=None):
    """Assemble source text and lint it; assembly errors become
    findings."""
    try:
        program = assemble(text)
    except AssemblyError as exc:
        report = LintReport(target, [Finding(
            "assemble", exc.bare_message, file=target, line=exc.line)])
        return report
    return lint_program(program, target=target, rules=rules)


def lint_path(path, rules=None):
    """Lint one ``.s`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return lint_source(text, target=str(path), rules=rules)


def lint_workload(name, scale=0.05, rules=None):
    """Lint the assembly a registered workload generates at ``scale``."""
    from ..workloads.registry import get_workload
    workload = get_workload(name)
    program = workload.build(scale=scale)
    return lint_program(program, target="<workload:%s>" % (name,),
                        rules=rules)


__all__ = ["lint_program", "lint_source", "lint_path", "lint_workload",
           "LINT_CHECKS"]
