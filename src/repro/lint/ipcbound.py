"""Dynamic and simulated cross-checks of the static recurrence bounds.

:mod:`repro.lint.recurrence` derives, from program text alone, the
per-iteration recurrence latency of every innermost reducible loop
under four graph variants (base A, collapsed C, load-speculated E,
value-speculated V).  This module asserts the full soundness chain
against one trace of the same program:

1. **static <= dynamic growth** — for every run of an analyzed loop
   and every variant, the static per-lap recurrence latency is at most
   the observed depth growth of the recurrence's anchor instruction in
   the matching dynamic dependence graph: the base graph
   (:meth:`DependenceGraph.depths`) for A, the freely-contracted graph
   (:func:`restructured_depths`) for C, and the contracted graph with
   the *statically predictable* loads' address arcs cut for E.

2. **static IPC bound >= dataflow IPC** — the per-workload static
   ceiling ``instructions / (best single-run recurrence floor)``
   dominates the matching graph's dataflow-limit IPC.  Graph IPC uses
   the *issue-based* critical path (``max(depth - latency) + 1``),
   matching the simulator's cycle count (cycles end at the last issue,
   not the last completion); the floor is a difference of same-
   instruction depths — i.e. of issue times — so it never exceeds
   that path.

3. **dataflow IPC >= simulated IPC at the widest machine** — each
   restructured graph's limit dominates the matching simulated
   configuration: A against config A, contracted against config C,
   and — because ideal speculation in the simulator breaks *every*
   load's address dependences, not only the statically predictable
   ones — the contracted graph with **all** load address arcs cut
   against config E.  The statically-cut E graph is bridged to the
   ideal one by ``CP(static cut) >= CP(all cut)``.  Variant V checks
   against config I (stride value speculation with squash/replay):
   the V graph cuts every out-arc of the static value cut set — all
   loads plus stride/invariant-predictable producers — a strict
   superset of the arcs config I's machine ever bypasses (only
   confidently-predicted loads, and wrong predictions replay), so
   ``graph V IPC >= simulated config-I IPC`` is a theorem.

A violation anywhere in the chain means a static must-edge does not
materialize, a latency is mismodeled, or the scheduler outruns its
own dependence graph — each worth a loud failure (exit code 2 in
``repro lint --recur-check``).
"""

from ..analysis import DependenceGraph, restructured_depths
from .addrclass import PREDICTABLE_CLASSES
from .recurrence import VARIANTS

#: simulated machine letter per graph variant
SIM_LETTERS = {"A": "A", "C": "C", "E": "E", "V": "I"}

_REL_TOL = 1e-9


class RecurrenceCheck:
    """Result of :func:`recurrence_cross_check` for one
    (program, trace) pair."""

    __slots__ = ("violations", "n", "cp", "ipc", "sim", "widest",
                 "static_floor", "static_bound", "weighted",
                 "loops_checked", "runs_checked")

    def __init__(self):
        self.violations = []
        self.n = 0
        #: variant -> critical path of the matching dynamic graph
        #: (plus "E_ideal" for the all-loads-cut graph)
        self.cp = {}
        self.ipc = {}
        self.sim = {}               # variant -> simulated IPC @ widest
        self.widest = 0
        #: variant -> largest single-run recurrence floor (cycles)
        self.static_floor = dict.fromkeys(VARIANTS, 0)
        #: variant -> n / floor, None when no run produced a floor
        self.static_bound = dict.fromkeys(VARIANTS, None)
        #: variant -> [loop-instructions, floor-cycles] summed over
        #: runs: the descriptive trip-count-weighted ceiling
        self.weighted = {variant: [0, 0] for variant in VARIANTS}
        self.loops_checked = 0
        self.runs_checked = 0

    @property
    def ok(self):
        return not self.violations

    def weighted_ceiling(self, variant):
        instructions, cycles = self.weighted[variant]
        if not cycles:
            return None
        return instructions / cycles


def variant_depth_arrays(trace, classes, value_cut=None):
    """The dynamic depth arrays the chain compares against: ``A``
    (base), ``C`` (freely contracted), ``E`` (contracted + statically
    predictable loads cut), ``E_ideal`` (contracted + every load cut,
    the sound bound on ideal speculation) and — when ``value_cut``
    (the static value-speculation cut set) is given — ``V``
    (contracted + every out-arc of the cut set removed, the sound
    bound on config I's result-value speculation)."""
    predictable = {index for index, site in classes.by_index.items()
                   if site.cls in PREDICTABLE_CLASSES}
    arrays = {
        "A": DependenceGraph(trace).depths(),
        "C": restructured_depths(trace, collapse=True),
        "E": restructured_depths(trace, collapse=True,
                                 cut_addr_loads=predictable),
        "E_ideal": restructured_depths(trace, collapse=True,
                                       cut_all_loads=True),
    }
    if value_cut is not None:
        arrays["V"] = restructured_depths(trace, collapse=True,
                                          cut_value_producers=value_cut)
    return arrays


def _scan_runs(analysis, trace):
    """Per-loop runs of the trace: consecutive positions inside one
    analyzed loop's body, with the positions of every variant's anchor
    instruction.  Yields ``(rec, anchors, instructions)``."""
    body_loop = {}
    anchor_sets = {}
    for rec in analysis.loops:
        anchors = {rec.best[v].anchor for v in VARIANTS
                   if rec.best[v] is not None}
        if not anchors:
            continue
        anchor_sets[id(rec)] = anchors
        for i in rec.loop.body:
            body_loop[i] = rec
    runs = []
    current_rec = None
    current_anchors = None
    count = 0
    for pos, s in enumerate(trace.sidx):
        rec = body_loop.get(s)
        if rec is not current_rec:
            if current_rec is not None:
                runs.append((current_rec, current_anchors, count))
            current_rec = rec
            current_anchors = {} if rec is not None else None
            count = 0
        if rec is not None:
            count += 1
            if s in anchor_sets[id(rec)]:
                current_anchors.setdefault(s, []).append(pos)
    if current_rec is not None:
        runs.append((current_rec, current_anchors, count))
    return runs


def recurrence_cross_check(analysis, trace, sim_ipcs=None, widest=2048,
                           simulate=True):
    """Assert the static/dynamic/simulated soundness chain.

    ``analysis`` is a :class:`repro.lint.recurrence.RecurrenceAnalysis`
    of the program that produced ``trace``.  ``sim_ipcs`` may supply
    precomputed ``{"A": ipc, "C": ipc, "E": ipc, "V": ipc}`` at the
    widest machine (e.g. from a report runner's cache); otherwise the
    matching configurations (config I for variant V) are simulated
    here at width ``widest`` unless ``simulate`` is False, which skips
    link 3.
    """
    check = RecurrenceCheck()
    check.n = len(trace)
    check.widest = widest
    depths = variant_depth_arrays(trace, analysis.classes,
                                  value_cut=analysis.value_cut)
    lat = trace.static.lat
    sidx = trace.sidx
    for key, array in depths.items():
        # Issue-based critical path (latest earliest-issue time + 1):
        # the simulator counts cycles to the last *issue*, not the last
        # completion, so the matching dataflow floor is max(start) + 1.
        check.cp[key] = max(depth - lat[sidx[i]]
                            for i, depth in enumerate(array)) + 1 \
            if array else 0
        check.ipc[key] = check.n / check.cp[key] if check.cp[key] \
            else 0.0

    # ---- link 1: static per-lap latency <= dynamic depth growth
    checked_loops = set()
    for rec, anchors, instructions in _scan_runs(analysis, trace):
        check.runs_checked += 1
        checked_loops.add(id(rec))
        for variant in VARIANTS:
            best = rec.best[variant]
            if best is None:
                continue
            lat = best.latency[variant]
            if not lat:
                continue            # fully contracted: no constraint
            positions = anchors.get(best.anchor, ())
            laps = (len(positions) - 1) // best.dist
            if laps < 1:
                continue
            array = depths[variant]
            growth = array[positions[laps * best.dist]] \
                - array[positions[0]]
            need = laps * lat
            if growth < need:
                check.violations.append(
                    "loop@%d variant %s: static recurrence floor %d "
                    "cycles (%d laps x %d) exceeds dynamic depth "
                    "growth %d at anchor #%d"
                    % (rec.loop.header, variant, need, laps, lat,
                       growth, best.anchor))
            if need > check.static_floor[variant]:
                check.static_floor[variant] = need
            check.weighted[variant][0] += instructions
            check.weighted[variant][1] += need
    check.loops_checked = len(checked_loops)

    # ---- link 2: static IPC bound >= dataflow IPC (matching graph)
    for variant in VARIANTS:
        floor = check.static_floor[variant]
        if not floor:
            continue
        check.static_bound[variant] = check.n / floor
        if floor > check.cp[variant]:
            check.violations.append(
                "variant %s: static cycle floor %d exceeds the "
                "dataflow critical path %d — static IPC bound %.3f "
                "undercuts the dataflow limit %.3f"
                % (variant, floor, check.cp[variant],
                   check.static_bound[variant], check.ipc[variant]))

    # ---- link 3: dataflow IPC >= simulated IPC at the widest machine
    if sim_ipcs is None and simulate:
        from ..core.config import paper_config
        from ..core.simulator import simulate_trace
        sim_ipcs = {}
        for variant, letter in SIM_LETTERS.items():
            result = simulate_trace(trace,
                                    paper_config(letter, widest))
            sim_ipcs[variant] = result.ipc
    if sim_ipcs:
        check.sim = dict(sim_ipcs)
        links = (("A", "A"), ("C", "C"), ("E", "E_ideal"), ("V", "V"))
        for variant, graph_key in links:
            sim = sim_ipcs.get(variant)
            if sim is None:
                continue
            limit = check.ipc[graph_key]
            if limit * (1 + _REL_TOL) < sim:
                check.violations.append(
                    "variant %s: dataflow limit %.3f IPC (graph %s) < "
                    "simulated %.3f IPC at width %d — the scheduler "
                    "outran its own dependence graph"
                    % (variant, limit, graph_key, sim, widest))
        if check.cp["E"] < check.cp["E_ideal"]:
            check.violations.append(
                "cutting every load's address arcs lengthened the "
                "critical path (%d -> %d) — impossible for a pure "
                "edge removal"
                % (check.cp["E"], check.cp["E_ideal"]))
        if "V" in check.cp and check.cp["V"] > check.cp["C"]:
            check.violations.append(
                "cutting the value-speculated producers' out-arcs "
                "lengthened the critical path (%d -> %d) — impossible "
                "for a pure edge removal"
                % (check.cp["C"], check.cp["V"]))
    return check


def fetch_refined_ipc(instructions, cycles, mispredict_floor):
    """Fetch-side IPC refinement from the branchflow cold-start floor.

    A realistic-fetch machine (config C and up) pays at least one
    fetch-stall cycle per *guaranteed* misprediction
    (:meth:`repro.lint.branchflow.BranchFlowAnalysis
    .misprediction_floor`), so its cycle count can never drop below the
    floor and the achievable IPC is at most
    ``instructions / max(cycles, floor)``.
    """
    denominator = max(cycles, mispredict_floor)
    if denominator <= 0:
        return float(instructions)
    return instructions / denominator


__all__ = ["RecurrenceCheck", "SIM_LETTERS", "fetch_refined_ipc",
           "recurrence_cross_check", "variant_depth_arrays"]
