"""Control-flow graph over an assembled :class:`~repro.asm.program.Program`.

The graph is built at instruction granularity (programs here are a few
hundred instructions, so per-instruction dataflow is both simpler and
fast enough) with basic-block *leaders* computed on top for reporting.

Two successor conventions are provided:

``successors``
    The *strict* walk used by the lint checks: a conditional branch goes
    to its target and its fallthrough, ``ba`` only to its target,
    ``call`` to its target **and** the return site (the callee is
    assumed to return), and ``jmpl``/``halt`` end the path (``jmpl`` is
    a return or computed jump whose continuation belongs to the caller).

``may_successors``
    The *may* walk used by the collapse-bound analysis, which must not
    miss any path the emulator can take: ``jmpl`` may land on any
    labelled instruction or any call-return site.  This matches the
    assembler's idioms (returns target ``call+1``; computed jumps target
    labels); the emulator itself refuses ``jmpl`` outside ``.text``.

A successor equal to ``len(program)`` is the *off-end* pseudo-node:
execution would fall through past the end of ``.text``.
"""

from ..isa.opcodes import Opcode, OpClass


class ControlFlowGraph:
    """CFG for one assembled program."""

    def __init__(self, program):
        self.program = program
        instrs = program.instructions
        self.n = len(instrs)
        try:
            self.entry = program.index_of_address(program.entry)
        except (ValueError, KeyError):
            self.entry = 0
        #: return sites: the instruction after each ``call``
        self.call_returns = frozenset(
            i + 1 for i, ins in enumerate(instrs)
            if ins.opcode is Opcode.CALL and i + 1 <= self.n)
        #: instruction indices carrying a text label
        labelled = set()
        for name, address in program.symbols.items():
            try:
                labelled.add(program.index_of_address(address))
            except (ValueError, KeyError):
                continue
        self.labelled = frozenset(labelled)
        self._strict = [self._strict_successors(i) for i in range(self.n)]
        self.leaders = self._compute_leaders()
        self.reachable = self._compute_reachable()

    # ------------------------------------------------------------------

    def _strict_successors(self, i):
        ins = self.program.instructions[i]
        op = ins.opcode
        if op is Opcode.HALT:
            return ()
        if op is Opcode.JMPL:
            return ()
        if op is Opcode.BA:
            return (ins.target,)
        if op is Opcode.CALL:
            return (ins.target, i + 1)
        if ins.opclass is OpClass.BRC:
            return (ins.target, i + 1)
        return (i + 1,)

    def successors(self, i):
        """Strict successors (may include ``n``: the off-end node)."""
        return self._strict[i]

    def may_successors(self, i):
        """Superset of every dynamically possible successor."""
        ins = self.program.instructions[i]
        if ins.opcode is Opcode.JMPL:
            return tuple(sorted((self.labelled | self.call_returns)
                                - {self.n}))
        return self._strict[i]

    # ------------------------------------------------------------------

    def _compute_leaders(self):
        """Basic-block leaders: entry, branch targets, post-control."""
        leaders = set()
        if self.n:
            leaders.add(self.entry)
            leaders.add(0)
        for i, ins in enumerate(self.program.instructions):
            if ins.target is not None and ins.target < self.n:
                leaders.add(ins.target)
            if ins.is_control or ins.opcode is Opcode.HALT:
                if i + 1 < self.n:
                    leaders.add(i + 1)
        return tuple(sorted(leaders))

    def basic_blocks(self):
        """``(start, end)`` half-open index ranges, one per block."""
        if not self.n:
            return []
        starts = list(self.leaders)
        return [(start, end) for start, end in
                zip(starts, starts[1:] + [self.n])]

    def block_of(self, i):
        """Leader index of the block containing instruction ``i``."""
        block = self.leaders[0]
        for leader in self.leaders:
            if leader > i:
                break
            block = leader
        return block

    def _compute_reachable(self):
        """Indices reachable from the entry along strict successors."""
        seen = set()
        stack = [self.entry] if self.n else []
        while stack:
            i = stack.pop()
            if i in seen or i >= self.n:
                continue
            seen.add(i)
            for s in self._strict[i]:
                if s not in seen and s < self.n:
                    stack.append(s)
        return frozenset(seen)

    def off_end_sites(self):
        """Reachable instructions that can fall through past ``.text``."""
        return sorted(i for i in self.reachable
                      if self.n in self._strict[i])


__all__ = ["ControlFlowGraph"]
