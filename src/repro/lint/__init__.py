"""Static dataflow analysis and runtime invariant checking.

Two halves share this package:

- the **static analyzer** (:func:`lint_program` and friends) builds a
  CFG over assembled programs and runs dataflow checks — uninitialized
  register reads, dead register writes, unreachable code, fallthrough
  past ``.text``, condition-code def-use — plus a static
  collapsing-opportunity pass (:class:`StaticCollapseBound`) whose
  per-program upper bound is cross-checkable against the simulator's
  dynamic :class:`~repro.collapse.stats.CollapseStats`, and a
  loop/induction-variable pass (:class:`LoopForest`,
  :class:`AddressClassification`) that classifies every static load's
  address predictability and cross-checks it (:func:`cross_check`,
  CLI flag ``--addr-check``) against per-PC two-delta predictor
  histograms, and a loop-recurrence pass
  (:class:`RecurrenceAnalysis`, CLI flag ``--recur``) that derives
  static per-loop recMII / IPC ceilings under base, collapsed and
  d-speculated dependence-graph variants and cross-checks the whole
  static -> dataflow -> simulator chain
  (:func:`recurrence_cross_check`, CLI flag ``--recur-check``), and a
  memory-dependence pass (:class:`MemDepBound`, CLI flag ``--memdep``)
  that resolves every load/store address to a bounded congruence form
  and emits the may-alias conflict-pair set — cross-checked
  (:func:`memdep_cross_check`, CLI flag ``--memdep-check``) against
  the trace's word-granular store->load dependences and the violation
  pairs an MDPT (config F) simulation learns, and a decoupled
  access/execute slicing pass (:class:`DAEAnalysis`, CLI flag
  ``--dae``) that computes each innermost loop's backward address
  cones, classifies it clean / chase-poisoned / skipped, derives the
  access-slice fraction and a minimum FIFO queue depth from the
  recMII gap, and proves (:func:`dae_cross_check`, CLI flag
  ``--dae-check``) that statically-clean loops never incur a dynamic
  chase stall and that dynamic peak queue occupancy stays within the
  static depth bound on a configuration-H run, and a
  branch-predictability pass (:class:`BranchFlowAnalysis`, CLI flag
  ``--branch``) that classifies every conditional branch per innermost
  loop into a sound lattice (trip / exit / invariant / periodic /
  history / load / straight / unknown), recovers IV-governed trip
  counts, derives cold-start misprediction floors and accuracy
  ceilings, and proves them (:func:`branchflow_cross_check`, CLI flag
  ``--branch-check``) against per-PC combining-predictor histograms
  plus a config-J (load-driven exit-branch prediction) simulation.
  Passes themselves sit
  on a declarative registry (:func:`register_lint_pass` /
  :func:`lint_passes`): the driver iterates registered passes in
  order, so new analyses hook into ``repro lint --all``
  structurally;
- the **runtime sanitizer** (:class:`SchedulerSanitizer`, CLI flag
  ``--sanitize``) instruments the window scheduler to assert the model
  invariants every cycle and raises :class:`SanitizeError` on any
  violation.

See ``docs/LINT.md`` for the check catalogue and rationale.
"""

from .addrclass import (
    AddressCheck,
    AddressClassification,
    PREDICTABLE_CLASSES,
    check_addr_untracked,
    cross_check,
)
from .analyzer import (
    LINT_CHECKS,
    lint_path,
    lint_program,
    lint_source,
    lint_workload,
)
from .branchflow import (
    ALL_BRANCH_CLASSES,
    BRANCH_COVERAGE_CAP,
    BRANCH_PREDICTABLE_CLASSES,
    BranchflowCheck,
    BranchFlowAnalysis,
    BranchPlan,
    BranchSite,
    branch_class_join,
    branch_class_leq,
    branchflow_cross_check,
)
from .cfg import ControlFlowGraph
from .collapse_bound import StaticCollapseBound
from .cycles import elementary_cycles
from .dae import (
    DAEAnalysis,
    DAECheck,
    DAEPlan,
    dae_cross_check,
    static_signature,
)
from .findings import SEV_ERROR, SEV_WARNING, Finding, LintReport
from .ipcbound import (
    RecurrenceCheck,
    fetch_refined_ipc,
    recurrence_cross_check,
)
from .loops import DominatorTree, Loop, LoopForest
from .memdep import MemDepBound, MemDepCheck, memdep_cross_check
from .recurrence import LoopRecurrence, RecurrenceAnalysis
from .registry import (
    LintContext,
    LintPass,
    lint_passes,
    register_lint_pass,
    unregister_lint_pass,
)
from .sanitize import SanitizeError, SchedulerSanitizer
from .valueflow import (
    VALUE_PREDICTABLE_CLASSES,
    ValueflowCheck,
    ValueFlowAnalysis,
    ValueSite,
    class_join,
    class_leq,
    valueflow_cross_check,
)

__all__ = [
    "AddressCheck",
    "AddressClassification",
    "ALL_BRANCH_CLASSES",
    "BRANCH_COVERAGE_CAP",
    "BRANCH_PREDICTABLE_CLASSES",
    "BranchFlowAnalysis",
    "BranchPlan",
    "BranchSite",
    "BranchflowCheck",
    "ControlFlowGraph",
    "DAEAnalysis",
    "DAECheck",
    "DAEPlan",
    "DominatorTree",
    "Finding",
    "LintContext",
    "LintPass",
    "LintReport",
    "LINT_CHECKS",
    "Loop",
    "LoopForest",
    "LoopRecurrence",
    "MemDepBound",
    "MemDepCheck",
    "PREDICTABLE_CLASSES",
    "RecurrenceAnalysis",
    "RecurrenceCheck",
    "SanitizeError",
    "SchedulerSanitizer",
    "SEV_ERROR",
    "SEV_WARNING",
    "StaticCollapseBound",
    "VALUE_PREDICTABLE_CLASSES",
    "ValueFlowAnalysis",
    "ValueSite",
    "ValueflowCheck",
    "branch_class_join",
    "branch_class_leq",
    "branchflow_cross_check",
    "check_addr_untracked",
    "class_join",
    "class_leq",
    "cross_check",
    "dae_cross_check",
    "elementary_cycles",
    "fetch_refined_ipc",
    "lint_passes",
    "lint_path",
    "lint_program",
    "lint_source",
    "lint_workload",
    "memdep_cross_check",
    "recurrence_cross_check",
    "register_lint_pass",
    "static_signature",
    "unregister_lint_pass",
    "valueflow_cross_check",
]
