"""Static loop-recurrence analysis: recMII per graph variant.

The paper's Figure 1.e argument is that collapsing and d-speculation
*restructure the dependence graph*: they shorten (or break) the
dependence cycles — recurrences — that cap how fast a loop can
possibly run.  This pass derives those caps from program text alone.

For every innermost reducible loop it builds a *must* dependence graph
of the loop body: nodes are instructions that execute exactly once per
iteration, edges are register, condition-code and memory dependences
that provably materialize every iteration, annotated with a *distance*
(0 = same iteration, 1 = loop-carried).  Every elementary cycle of
that graph is a recurrence; its latency/distance ratio bounds the
initiation interval, and

    recMII = max over cycles of latency / distance

bounds it globally.  Three variants of the graph are measured,
matching the machines the simulator models:

``A``
    the base graph: every edge costs its producer's latency.
``C``
    statically collapsed: an edge a collapse-capable consumer could
    merge (the scheduler's arc-collapsibility predicate: expression or
    condition-code arcs between ``COLLAPSIBLE_PRODUCERS`` /
    ``COLLAPSIBLE_CONSUMERS`` classes) costs *zero* — the machine's
    group merge inherits the producer's still-pending inputs, so a
    merged consumer never waits out the producer's latency.  No group
    size cap is applied: the contraction must *under*-estimate every
    legal collapse schedule for the bound to stay sound.
``E``
    collapsed, with address-input edges *cut* for loads whose address
    :mod:`repro.lint.addrclass` classifies stride/affine/invariant —
    the edges realizable d-speculation breaks.  A cycle containing a
    cut edge is no recurrence at all and contributes no bound.
``V``
    collapsed, with every edge *out of* a value-speculatable producer
    cut: all loads (config I attempts any load the confidence gate
    opens for) plus every non-load whose result
    :mod:`repro.lint.valueflow` classifies stride/invariant-
    predictable.  These are the edges result-value speculation breaks;
    memory (store-to-load) edges are never cut — value speculation
    bypasses a *register* result, not the stored word.

Only *must* edges enter the graph (singleton reaching-writer masks,
must-alias memory): omitting an edge can only weaken the computed
bound, never invalidate it, so every approximation in this file errs
toward omission.  The dynamic side of the story — per-iteration depth
growth in the trace dependence graph and the simulated machines — is
checked against these numbers by :mod:`repro.lint.ipcbound`.
"""

from fractions import Fraction
from itertools import islice, product

from ..isa.opcodes import Opcode
from ..trace.records import LD, ST, StaticTable
from .addrclass import PREDICTABLE_CLASSES, AddressClassification
from .cfg import ControlFlowGraph
from .cycles import elementary_cycles
from .findings import Finding, SEV_WARNING
from .induction import INV
from .loops import LoopForest
from .valueflow import ValueFlowAnalysis

#: graph variants, in report order
VARIANTS = ("A", "C", "E", "V")

_NUM_SLOTS = 33          # 32 registers + condition codes (slot 32)
_CC = 32

#: cap on per-cycle parallel-edge combinations evaluated exactly
_COMBO_CAP = 64


class RecEdge:
    """One must-dependence edge of a loop-body graph."""

    __slots__ = ("src", "dst", "dist", "kind", "lat", "contractible",
                 "cut", "vcut")

    def __init__(self, src, dst, dist, kind, lat, contractible, cut,
                 vcut=False):
        self.src = src
        self.dst = dst
        self.dist = dist        # 0 = same iteration, 1 = loop-carried
        self.kind = kind        # "reg" | "cc" | "mem" | "data"
        self.lat = lat          # latency of the producer
        self.contractible = contractible
        self.cut = cut          # broken by realizable d-speculation (E)
        self.vcut = vcut        # broken by result-value speculation (V)

    def __repr__(self):
        return "<RecEdge %d->%d d%d %s%s%s%s>" % (
            self.src, self.dst, self.dist, self.kind,
            " collapse" if self.contractible else "",
            " cut" if self.cut else "",
            " vcut" if self.vcut else "")


class CycleBound:
    """One elementary recurrence with its per-variant latency."""

    __slots__ = ("nodes", "dist", "latency")

    def __init__(self, nodes, dist, latency):
        self.nodes = tuple(nodes)
        self.dist = dist
        #: variant -> summed latency, or None when the cycle is broken
        #: in that variant (contains a cut edge)
        self.latency = latency

    def ratio(self, variant):
        lat = self.latency.get(variant)
        if lat is None or self.dist <= 0:
            return None
        return Fraction(lat, self.dist)

    @property
    def anchor(self):
        return min(self.nodes)


class LoopRecurrence:
    """Recurrence bounds of one innermost reducible loop."""

    __slots__ = ("loop", "nodes", "edges", "cycles", "truncated",
                 "note", "best")

    def __init__(self, loop, nodes, edges, cycles, truncated, note=""):
        self.loop = loop
        self.nodes = nodes          # once-per-iteration body nodes
        self.edges = edges
        self.cycles = cycles
        self.truncated = truncated
        self.note = note
        #: variant -> CycleBound with the largest latency/distance
        self.best = {}
        for variant in VARIANTS:
            best = None
            for cycle in cycles:
                ratio = cycle.ratio(variant)
                if ratio is None:
                    continue
                if best is None or ratio > best.ratio(variant):
                    best = cycle
            self.best[variant] = best

    def recmii(self, variant):
        """Recurrence-constrained minimum initiation interval
        (cycles per iteration) as an exact Fraction, or None when no
        unbroken cycle exists in the variant."""
        best = self.best.get(variant)
        return best.ratio(variant) if best is not None else None

    def ipc_ceiling(self, variant):
        """Static IPC ceiling ``body size / recMII`` for the variant;
        None when the variant has no recurrence (unbounded by this
        loop)."""
        recmii = self.recmii(variant)
        if recmii is None or recmii == 0:
            return None
        return len(self.loop.body) / float(recmii)


class RecurrenceAnalysis:
    """Per-program recurrence bounds over all innermost reducible
    loops."""

    def __init__(self, program, cfg=None, forest=None, classes=None,
                 valueflow=None, cycle_limit=256):
        self.program = program
        self.cfg = cfg if cfg is not None else ControlFlowGraph(program)
        self.forest = forest if forest is not None \
            else LoopForest(self.cfg)
        self.classes = classes if classes is not None \
            else AddressClassification(program, self.cfg, self.forest)
        self.valueflow = valueflow if valueflow is not None \
            else ValueFlowAnalysis(program, self.cfg, self.forest,
                                   values=self.classes.values)
        #: static indices variant V cuts the out-edges of — the single
        #: source of truth shared with the dynamic graph V
        self.value_cut = self.valueflow.cut_indices()
        self.table = StaticTable.from_program(program)
        self.cycle_limit = cycle_limit
        self.loops = []             # LoopRecurrence, analyzed loops
        #: instruction indices heading cycles no bound is derived for:
        #: natural-loop headers inside irreducible regions, plus the
        #: heads of irreducible retreating edges (multi-entry cycles
        #: that form no natural loop at all)
        self.irreducible = []
        self._analyze()

    # ------------------------------------------------------------------

    def _analyze(self):
        skipped = set()
        for loop in self.forest.loops:
            if loop.children:
                continue            # only innermost loops carry recMII
            if self.forest.in_irreducible_region(loop.header):
                skipped.add(loop.header)
                continue
            self.loops.append(self._analyze_loop(loop))
        for _, head in self.forest.irreducible_edges:
            skipped.add(head)
        self.irreducible = sorted(skipped)

    def _analyze_loop(self, loop):
        instrs = self.program.instructions
        for i in loop.body:
            op = instrs[i].opcode
            if op is Opcode.CALL or op is Opcode.JMPL:
                return LoopRecurrence(loop, (), (), (), False,
                                      note="call in body")
        nodes = self._eligible(loop)
        in_state, carried = self._body_reaching(loop)
        edges = self._register_edges(loop, nodes, in_state, carried)
        edges.extend(self._memory_edges(loop, nodes))
        cycles, truncated = self._cycles(edges)
        return LoopRecurrence(loop, nodes, edges, cycles, truncated)

    def _eligible(self, loop):
        """Body nodes that execute exactly once per iteration: they
        dominate every back-edge tail (innermost loops have no inner
        cycle, so 'at least once' is 'exactly once')."""
        dom = self.forest.dom
        tails = [tail for tail, _ in loop.back_edges]
        return tuple(sorted(
            i for i in loop.body
            if all(dom.dominates(i, tail) for tail in tails)))

    def _body_reaching(self, loop):
        """Reaching writers *within one iteration*.

        Forward dataflow over the body only, seeded at the header with
        the pseudo-writer HEADER (bit ``cfg.n``) in every slot; back
        edges are not followed.  Returns ``(in_state, carried)`` where
        ``in_state[i]`` is a 33-slot mask list and ``carried[r]`` is
        the merged out-state of all back-edge tails — the writers whose
        values the next iteration receives.
        """
        table = self.table
        cfg = self.cfg
        body = loop.body
        header = loop.header
        header_bit = 1 << cfg.n
        in_state = {header: [header_bit] * _NUM_SLOTS}
        work = [header]
        while work:
            i = work.pop()
            out = list(in_state[i])
            dest = table.dest[i]
            if dest >= 0:
                out[dest] = 1 << i
            if table.writes_cc[i]:
                out[_CC] = 1 << i
            for s in cfg.successors(i):
                if s >= cfg.n or s not in body or s == header:
                    continue
                target = in_state.get(s)
                if target is None:
                    in_state[s] = list(out)
                    work.append(s)
                    continue
                changed = False
                for r in range(_NUM_SLOTS):
                    merged = target[r] | out[r]
                    if merged != target[r]:
                        target[r] = merged
                        changed = True
                if changed:
                    work.append(s)
        carried = [0] * _NUM_SLOTS
        for tail, _ in loop.back_edges:
            state = in_state.get(tail)
            if state is None:       # tail unreachable from header
                return in_state, None
            out = list(state)
            dest = table.dest[tail]
            if dest >= 0:
                out[dest] = 1 << tail
            if table.writes_cc[tail]:
                out[_CC] = 1 << tail
            for r in range(_NUM_SLOTS):
                carried[r] |= out[r]
        return in_state, carried

    def body_reaching(self, loop):
        """Public access to the per-iteration reaching-writer state;
        :mod:`repro.lint.dae` builds its address cones on it."""
        return self._body_reaching(loop)

    def _register_edges(self, loop, nodes, in_state, carried):
        """Register and condition-code must edges between
        once-per-iteration nodes."""
        table = self.table
        header_bit = 1 << self.cfg.n
        eligible = set(nodes)
        edges = []
        seen = set()

        def add(src, dst, dist, kind):
            if src not in eligible:
                return
            key = (src, dst, dist, kind)
            if key in seen:
                return
            seen.add(key)
            contractible = (kind in ("reg", "cc")
                            and table.consumer_ok[dst]
                            and table.producer_ok[src])
            cut = (kind == "reg" and table.cls[dst] == LD
                   and self._load_cut(dst))
            vcut = src in self.value_cut
            edges.append(RecEdge(src, dst, dist, kind, table.lat[src],
                                 contractible, cut, vcut))

        def resolve(dst, slot, kind):
            state = in_state.get(dst)
            if state is None:
                return
            mask = state[slot]
            if mask and mask & (mask - 1) == 0 and mask != header_bit:
                add(mask.bit_length() - 1, dst, 0, kind)
            elif mask == header_bit and carried is not None:
                cmask = carried[slot]
                if cmask and cmask & (cmask - 1) == 0 \
                        and cmask != header_bit:
                    add(cmask.bit_length() - 1, dst, 1, kind)

        for dst in nodes:
            for src_reg in (table.src1[dst], table.src2[dst]):
                if src_reg >= 0:
                    resolve(dst, src_reg, "reg")
            if table.cls[dst] == ST and table.datasrc[dst] >= 0:
                resolve(dst, table.datasrc[dst], "data")
            if table.reads_cc[dst]:
                resolve(dst, _CC, "cc")
        return edges

    def _load_cut(self, load):
        """True when realizable d-speculation breaks this load's
        address-input edges: the address class is predictable."""
        site = self.classes.by_index.get(load)
        return site is not None and site.cls in PREDICTABLE_CLASSES

    # -- memory must-alias edges ---------------------------------------

    def _addr_key(self, i, loop):
        """Run-constant address of a memory instruction as a hashable
        key, or None when the address is not provably constant within
        a run of ``loop``.  Keys compare equal iff the dynamic
        addresses are equal every iteration."""
        ins = self.program.instructions[i]
        if ins.rs1 < 0:
            return ("abs", ins.imm or 0)
        if ins.imm is None and ins.rs2 >= 0:
            return None             # reg+reg: offset unknown
        form = self.classes.values.form(ins.rs1, i, loop)
        if form[0] != INV:
            return None
        return ("reg", ins.rs1, ins.imm or 0)

    @staticmethod
    def _keys_distinct(key_a, key_b):
        """True when two run-constant addresses provably touch
        different words (4-byte granularity, unknown alignment)."""
        if key_a[0] != key_b[0]:
            return False            # reg vs abs: unknown relation
        if key_a[0] == "reg" and key_a[1] != key_b[1]:
            return False            # different base registers
        return abs(key_a[-1] - key_b[-1]) >= 4

    def _memory_edges(self, loop, nodes):
        """Store-to-load must edges through run-constant addresses.

        A carried (or same-iteration) memory recurrence needs: exactly
        one store whose address equals the load's every iteration, and
        every other store in the body provably distinct from it.  Any
        ambiguity drops the edge — omission is sound.
        """
        table = self.table
        dom = self.forest.dom
        eligible = set(nodes)
        stores = [i for i in loop.body if table.cls[i] == ST]
        loads = [i for i in loop.body if table.cls[i] == LD]
        if not stores or not loads:
            return []
        store_keys = {s: self._addr_key(s, loop) for s in stores}
        if any(key is None for key in store_keys.values()):
            return []               # an untracked store aliases anything
        edges = []
        for load in loads:
            if load not in eligible:
                continue
            lkey = self._addr_key(load, loop)
            if lkey is None:
                continue
            writers = []
            blocked = False
            for s in stores:
                skey = store_keys[s]
                if skey == lkey:
                    writers.append(s)
                elif not self._keys_distinct(skey, lkey):
                    blocked = True
                    break
            if blocked or len(writers) != 1:
                continue
            store = writers[0]
            if store not in eligible:
                continue
            if dom.dominates(store, load):
                dist = 0
            elif dom.dominates(load, store):
                dist = 1
            else:
                continue
            # Never vcut: value speculation bypasses register results,
            # not the stored memory word.
            edges.append(RecEdge(store, load, dist, "mem",
                                 table.lat[store], False, False, False))
        return edges

    # -- cycle enumeration and per-variant latencies -------------------

    def _cycles(self, edges):
        by_pair = {}
        graph = {}
        for edge in edges:
            by_pair.setdefault((edge.src, edge.dst), []).append(edge)
            graph.setdefault(edge.src, set()).add(edge.dst)
            graph.setdefault(edge.dst, set())
        node_cycles, truncated = elementary_cycles(
            {u: sorted(vs) for u, vs in graph.items()},
            limit=self.cycle_limit)
        cycles = []
        for nodes in node_cycles:
            hops = [by_pair[(nodes[k], nodes[(k + 1) % len(nodes)])]
                    for k in range(len(nodes))]
            combos = product(*hops)
            total = 1
            for options in hops:
                total *= len(options)
            if total > _COMBO_CAP:
                combos = islice(combos, _COMBO_CAP)
                truncated = True
            for combo in combos:
                dist = sum(edge.dist for edge in combo)
                if dist <= 0:
                    continue        # cannot happen: intra edges are acyclic
                lat_a = sum(edge.lat for edge in combo)
                lat_c = sum(edge.lat for edge in combo
                            if not edge.contractible)
                broken = any(edge.cut for edge in combo)
                vbroken = any(edge.vcut for edge in combo)
                cycles.append(CycleBound(nodes, dist, {
                    "A": lat_a, "C": lat_c,
                    "E": None if broken else lat_c,
                    "V": None if vbroken else lat_c}))
        return cycles, truncated

    # -- reporting -----------------------------------------------------

    def findings(self, file="<program>"):
        """``recur-irreducible`` warnings for skipped loops."""
        instrs = self.program.instructions
        found = []
        for header in self.irreducible:
            ins = instrs[header]
            found.append(Finding(
                "recur-irreducible",
                "cycle entered at instruction #%d lies in an "
                "irreducible region; no static recurrence bound is "
                "derived for it" % (header,),
                file=file, line=ins.line, index=header,
                severity=SEV_WARNING))
        return found

    def summary_rows(self):
        """Rows (header line, body, nodes, cycles, recMII A/C/E/V,
        ceiling A/C/E/V, note) for the CLI ``--recur`` table."""
        instrs = self.program.instructions

        def fmt_recmii(value):
            if value is None:
                return "-"
            ceil = -(-value.numerator // value.denominator)
            return "%d (%s)" % (ceil, value) if value.denominator != 1 \
                else str(ceil)

        def fmt_ceiling(value):
            return "inf" if value is None else "%.1f" % value

        rows = []
        for rec in self.loops:
            header_ins = instrs[rec.loop.header]
            line = header_ins.line if header_ins.line is not None else 0
            note = rec.note
            if rec.truncated:
                note = (note + "; " if note else "") + "truncated"
            rows.append([
                line, len(rec.loop.body), len(rec.nodes),
                len(rec.cycles),
                fmt_recmii(rec.recmii("A")),
                fmt_recmii(rec.recmii("C")),
                fmt_recmii(rec.recmii("E")),
                fmt_recmii(rec.recmii("V")),
                fmt_ceiling(rec.ipc_ceiling("A")),
                fmt_ceiling(rec.ipc_ceiling("C")),
                fmt_ceiling(rec.ipc_ceiling("E")),
                fmt_ceiling(rec.ipc_ceiling("V")),
                note or "-",
            ])
        return rows


__all__ = ["VARIANTS", "CycleBound", "LoopRecurrence", "RecEdge",
           "RecurrenceAnalysis"]
