"""Forward/backward dataflow checks over the lint CFG.

Three classic bit-vector analyses at instruction granularity, each a
few-hundred-element fixpoint over 33-bit masks (32 registers + the
condition codes as bit 32):

- *definite assignment* (forward, meet = intersection) powers the
  uninitialized-register-read and cc-before-branch checks;
- *liveness* (backward, meet = union) powers the dead-register-write
  check;
- strict reachability powers the unreachable-code and
  fallthrough-past-``.text`` checks.

Calls are treated conservatively in both directions: a ``call``'s
fallthrough edge defines every register and the condition codes (the
callee is opaque and may set anything), while ``call`` and ``jmpl``
*use* every register (arguments, results and preserved state live in
registers).  This suppresses interprocedural false positives at the
cost of missing some intraprocedural facts across calls — the right
trade for a linter that must run clean on correct programs.
"""

from ..isa.opcodes import Opcode, OpClass
from ..isa.registers import G0, SP, reg_name
from .findings import Finding

CC_BIT = 32
ALL_MASK = (1 << 33) - 1
#: registers defined before ``main`` runs: %g0 (hardwired) and the
#: stack pointer the emulator initialises (see ``emu.machine``)
ENTRY_MASK = (1 << G0) | (1 << SP)

#: classes whose only architectural effect is a register/cc result
_VALUE_CLASSES = frozenset((OpClass.AR, OpClass.LG, OpClass.SH,
                            OpClass.MV, OpClass.LD, OpClass.MUL,
                            OpClass.DIV))


def reg_reads(ins):
    """Architectural register sources of one instruction (no %g0)."""
    reads = []
    if ins.opcode is Opcode.SETHI:
        return reads
    if ins.opcode is Opcode.MOV:
        if ins.imm is None and ins.rs2 > 0:
            reads.append(ins.rs2)
        return reads
    if ins.rs1 > 0:
        reads.append(ins.rs1)
    if ins.imm is None and ins.rs2 > 0 and ins.rs2 != ins.rs1:
        reads.append(ins.rs2)
    if ins.is_store and ins.rd > 0:
        reads.append(ins.rd)         # store data register
    return reads


def reg_defs(ins):
    """Architectural register destinations (no %g0; stores have none)."""
    if not ins.is_store and ins.rd > 0:
        return [ins.rd]
    return []


def _use_mask(ins):
    if ins.opcode in (Opcode.CALL, Opcode.JMPL):
        return ALL_MASK
    mask = 0
    for r in reg_reads(ins):
        mask |= 1 << r
    if ins.reads_cc:
        mask |= 1 << CC_BIT
    return mask


def _def_mask(ins):
    mask = 0
    for r in reg_defs(ins):
        mask |= 1 << r
    if ins.writes_cc:
        mask |= 1 << CC_BIT
    return mask


# ----------------------------------------------------------------------
# Forward: definite assignment (uninitialized reads, cc before branch).
# ----------------------------------------------------------------------

def definite_assignment(program, cfg):
    """Forward must-be-assigned masks, one per instruction.

    ``result[i]`` has bit ``r`` set when register ``r`` is definitely
    written on *every* strict path from the entry to instruction ``i``
    (bit :data:`CC_BIT` for the condition codes).  Shared by the
    uninit-read/cc-missing checks and the address-classification pass's
    ``addr-untracked`` finding.
    """
    instrs = program.instructions
    n = cfg.n
    live_in = [ALL_MASK] * n
    if not n:
        return live_in
    live_in[cfg.entry] = ENTRY_MASK
    work = [cfg.entry]
    while work:
        i = work.pop()
        ins = instrs[i]
        out = live_in[i] | _def_mask(ins)
        for s in cfg.successors(i):
            if s >= n:
                continue
            # The fallthrough edge of a call sees the callee's effects:
            # assume the callee may define anything.
            edge_out = ALL_MASK \
                if ins.opcode is Opcode.CALL and s == i + 1 else out
            new = live_in[s] & edge_out
            if new != live_in[s]:
                live_in[s] = new
                work.append(s)
    return live_in


def check_assignment(program, cfg, file="<program>"):
    instrs = program.instructions
    if not cfg.n:
        return []
    live_in = definite_assignment(program, cfg)
    findings = []
    for i in sorted(cfg.reachable):
        ins = instrs[i]
        mask = live_in[i]
        for r in reg_reads(ins):
            if not (mask >> r) & 1:
                findings.append(Finding(
                    "uninit-read",
                    "%s reads %s, which may be uninitialized on a path "
                    "from the entry point" % (ins.opcode.name.lower(),
                                              reg_name(r)),
                    file=file, line=ins.line, index=i))
        if ins.reads_cc and not (mask >> CC_BIT) & 1:
            findings.append(Finding(
                "cc-missing",
                "conditional branch %s has a path from the entry point "
                "with no prior condition-code write (cmp or an *cc op)"
                % (ins.opcode.name.lower(),),
                file=file, line=ins.line, index=i))
    return findings


# ----------------------------------------------------------------------
# Backward: liveness (dead register / condition-code results).
# ----------------------------------------------------------------------

def check_dead_results(program, cfg, file="<program>"):
    instrs = program.instructions
    n = cfg.n
    if not n:
        return []
    preds = [[] for _ in range(n)]
    for i in range(n):
        for s in cfg.successors(i):
            if s < n:
                preds[s].append(i)
    live_in = [0] * n
    live_out = [0] * n
    work = list(range(n))
    while work:
        i = work.pop()
        ins = instrs[i]
        out = 0
        for s in cfg.successors(i):
            if s < n:
                out |= live_in[s]
        live_out[i] = out
        new_in = _use_mask(ins) | (out & ~_def_mask(ins))
        if new_in != live_in[i]:
            live_in[i] = new_in
            work.extend(preds[i])
    findings = []
    for i in sorted(cfg.reachable):
        ins = instrs[i]
        if ins.opclass not in _VALUE_CLASSES:
            continue
        out = live_out[i]
        has_rd = ins.rd > 0
        rd_dead = has_rd and not (out >> ins.rd) & 1
        cc_dead = not ins.writes_cc or not (out >> CC_BIT) & 1
        if (not has_rd or rd_dead) and cc_dead:
            if has_rd:
                message = ("result of %s in %s is never read "
                           "(dead register write)"
                           % (ins.opcode.name.lower(), reg_name(ins.rd)))
            elif ins.writes_cc:
                message = ("condition codes set by %s are never read"
                           % (ins.opcode.name.lower(),))
            else:
                message = ("%s discards its result (destination %%g0) "
                           "and has no other effect"
                           % (ins.opcode.name.lower(),))
            findings.append(Finding("dead-store", message,
                                    file=file, line=ins.line, index=i))
    return findings


# ----------------------------------------------------------------------
# Reachability: unreachable code, fallthrough past the end of .text.
# ----------------------------------------------------------------------

def check_unreachable(program, cfg, file="<program>"):
    instrs = program.instructions
    findings = []
    run_start = None
    for i in range(cfg.n + 1):
        unreachable = i < cfg.n and i not in cfg.reachable
        if unreachable and run_start is None:
            run_start = i
        elif not unreachable and run_start is not None:
            count = i - run_start
            ins = instrs[run_start]
            findings.append(Finding(
                "unreachable",
                "%d instruction%s unreachable from the entry point"
                % (count, "" if count == 1 else "s"),
                file=file, line=ins.line, index=run_start))
            run_start = None
    return findings


def check_off_end(program, cfg, file="<program>"):
    instrs = program.instructions
    findings = []
    if not cfg.n:
        findings.append(Finding(
            "fallthrough-end", "program has an empty .text section",
            file=file))
        return findings
    for i in cfg.off_end_sites():
        ins = instrs[i]
        findings.append(Finding(
            "fallthrough-end",
            "control can fall through past the end of .text after %s "
            "(no halt or branch terminates this path)"
            % (ins.opcode.name.lower(),),
            file=file, line=ins.line, index=i))
    return findings


__all__ = ["check_assignment", "check_dead_results", "check_unreachable",
           "check_off_end", "definite_assignment", "reg_reads",
           "reg_defs", "ALL_MASK", "ENTRY_MASK", "CC_BIT"]
