"""Finding and report containers for the static analyzer.

A :class:`Finding` is one diagnosed problem, located by source file and
line (the assembler threads line numbers onto every
:class:`~repro.isa.instruction.Instruction`, so findings on assembled
programs always point back at the ``.s`` source).  A
:class:`LintReport` collects the findings for one lint target plus the
static collapse-opportunity summary, and renders them in the
conventional ``file:line: severity: [check] message`` compiler format.
"""

SEV_ERROR = "error"
SEV_WARNING = "warning"


class Finding:
    """One diagnosed problem in a program."""

    __slots__ = ("check", "message", "file", "line", "index", "severity")

    def __init__(self, check, message, file="<program>", line=None,
                 index=None, severity=SEV_ERROR):
        self.check = check
        self.message = message
        self.file = file
        self.line = line
        self.index = index          # instruction index, when applicable
        self.severity = severity

    @property
    def location(self):
        return "%s:%s" % (self.file, self.line if self.line is not None
                          else "?")

    def render(self):
        return "%s: %s: [%s] %s" % (self.location, self.severity,
                                    self.check, self.message)

    def sort_key(self):
        return (self.file,
                self.line if self.line is not None else 0,
                self.index if self.index is not None else 0,
                self.check)

    def __repr__(self):
        return "<Finding %s>" % (self.render(),)


class LintReport:
    """All findings for one lint target, plus analysis summaries."""

    def __init__(self, target, findings=None):
        self.target = target
        self.findings = sorted(findings or [], key=Finding.sort_key)
        #: filled in by the analyzer: StaticCollapseBound or None
        self.collapse_bound = None
        #: filled in by the analyzer: AddressClassification or None
        self.addr_classes = None
        #: filled in by the analyzer: ValueFlowAnalysis or None
        self.valueflow = None
        #: filled in by the analyzer: RecurrenceAnalysis or None
        self.recurrence = None
        #: filled in by the analyzer: BranchFlowAnalysis or None
        self.branchflow = None
        #: filled in by the analyzer: MemDepBound or None
        self.memdep_bound = None
        #: filled in by the analyzer: DAEAnalysis or None
        self.dae = None
        #: instruction / basic-block counts for the summary line
        self.instructions = 0
        self.blocks = 0

    def add(self, finding):
        self.findings.append(finding)
        self.findings.sort(key=Finding.sort_key)

    def extend(self, findings):
        self.findings.extend(findings)
        self.findings.sort(key=Finding.sort_key)

    @property
    def ok(self):
        return not any(f.severity == SEV_ERROR for f in self.findings)

    @property
    def errors(self):
        return [f for f in self.findings if f.severity == SEV_ERROR]

    def render(self):
        """One line per finding; a summary line when error-free.

        Warnings print *and* the clean summary follows — "clean" means
        no errors, matching the exit-code convention of ``repro lint``.
        """
        lines = [f.render() for f in self.findings]
        if self.ok:
            lines.append("%s: clean (%d instructions, %d blocks)" % (
                self.target, self.instructions, self.blocks))
        return "\n".join(lines)

    def __repr__(self):
        return "<LintReport %s: %d findings>" % (self.target,
                                                 len(self.findings))


__all__ = ["Finding", "LintReport", "SEV_ERROR", "SEV_WARNING"]
