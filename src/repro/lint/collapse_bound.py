"""Static collapsing-opportunity analysis (Section 3, statically).

The scheduler only ever merges a *direct* producer arc when the consumer
enters the window: the consumer's expression operands (``src1``/``src2``
of the static table, plus the condition-code input of a conditional
branch) each contribute at most one collapse event per dynamic instance,
and only when the architectural last writer of that operand is of a
collapsible producer class (``ar``/``lg``/``sh``/``mv``).  Group growth
is bounded by ``max_group`` members (one extra with zero-operand
detection), so a consumer can absorb at most ``max_group - 1`` (+1)
merges regardless of its operand count.

This module computes, per static instruction, the set of *may-reaching
last writers* of every operand over a may-CFG (conditional branches go
both ways, ``jmpl`` may land on any labelled instruction or call-return
site — the emulator's own restriction).  From that it derives a sound
per-static upper bound ``ub[s]`` on collapse events per dynamic
execution of ``s``; summing ``ub`` over a trace bounds the dynamic
``CollapseStats.events`` from above for *any* schedule the model can
produce.  The cross-check ``static bound >= dynamic events`` is wired
into ``repro lint --cross-check`` and the test suite.

The per-category breakdown uses :func:`merge_category` on *fresh*
(single-instruction) producer/consumer groups.  It is a diagnostic
profile of which signature pairs the rules admit and in which category
a first merge would land — grown groups can shift category (a pair
classified 3-1 can become 4-1 once the producer has itself absorbed a
member), so only the total is a guaranteed bound.
"""

from collections import Counter

from ..collapse.classify import Group, merge_category
from ..collapse.rules import CollapseRules
from ..trace.records import StaticTable
from .cfg import ControlFlowGraph

CC_SLOT = 32


class StaticCollapseBound:
    """Per-program static upper bound on collapse events."""

    def __init__(self, program, rules=None, cfg=None):
        self.program = program
        self.rules = rules if rules is not None else CollapseRules.paper()
        self.cfg = cfg if cfg is not None else ControlFlowGraph(program)
        self.table = StaticTable.from_program(program)
        n = len(self.table)
        producer_mask = 0
        for i in range(n):
            if self.table.producer_ok[i]:
                producer_mask |= 1 << i
        self._producer_mask = producer_mask
        self._reach = self._reaching_writers()
        self.ub = [0] * n
        self.arc_count = [0] * n
        #: Counter of first-merge categories over static (producer,
        #: consumer) pairs the rules admit — diagnostic, not a bound.
        self.pair_categories = Counter()
        #: Counter of admissible (producer sig, consumer sig) pairs.
        self.pair_signatures = Counter()
        self._analyze()

    # ------------------------------------------------------------------

    def _reaching_writers(self):
        """Fixpoint: per instruction, per operand slot (32 registers +
        cc), the bitmask of instructions that may be the architectural
        last writer when control reaches it."""
        table = self.table
        n = self.cfg.n
        reach = [None] * n
        if not n:
            return reach
        entry = self.cfg.entry
        reach[entry] = [0] * 33
        work = [entry]
        while work:
            i = work.pop()
            state = reach[i]
            # Transfer: this instruction becomes the last writer of its
            # destinations.
            out = list(state)
            dest = table.dest[i]
            if dest > 0:
                out[dest] = 1 << i
            if table.writes_cc[i]:
                out[CC_SLOT] = 1 << i
            for s in self.cfg.may_successors(i):
                if s >= n:
                    continue
                target = reach[s]
                if target is None:
                    reach[s] = list(out)
                    work.append(s)
                    continue
                changed = False
                for slot in range(33):
                    merged = target[slot] | out[slot]
                    if merged != target[slot]:
                        target[slot] = merged
                        changed = True
                if changed:
                    work.append(s)
        return reach

    def _operand_slots(self, s):
        """Distinct operand slots of consumer ``s`` that the scheduler
        builds *collapsible* arcs from, with the use count the merge
        legality check sees."""
        table = self.table
        slots = []
        src1 = table.src1[s]
        src2 = table.src2[s]
        if src1 >= 0:
            slots.append((src1, 2 if src2 == src1 else 1))
        if src2 >= 0 and src2 != src1:
            slots.append((src2, 1))
        if table.reads_cc[s]:
            slots.append((CC_SLOT, 1))
        return slots

    def _analyze(self):
        table = self.table
        rules = self.rules
        cap = rules.max_group - 1 + (1 if rules.zero_detection else 0)
        producer_mask = self._producer_mask
        for s in range(len(table)):
            if not table.consumer_ok[s]:
                continue
            state = self._reach[s]
            if state is None:        # unreachable even on the may-CFG
                continue
            fresh_raw = table.leaves[s] + table.zeros[s]
            if not rules.zero_detection and fresh_raw > rules.max_leaves:
                # Raw operand counts never shrink without zero-operand
                # detection, so no merge into this consumer can ever
                # satisfy the device limit.
                continue
            arcs = 0
            consumer = Group(s, table.sig[s], table.leaves[s],
                             table.zeros[s])
            for slot, uses in self._operand_slots(s):
                writers = state[slot] & producer_mask
                if not writers:
                    continue
                arcs += 1
                mask = writers
                while mask:
                    low = mask & -mask
                    w = low.bit_length() - 1
                    mask ^= low
                    producer = Group(w, table.sig[w], table.leaves[w],
                                     table.zeros[w])
                    category = merge_category(consumer, producer, uses,
                                              rules)
                    if category is not None:
                        self.pair_categories[category] += 1
                        self.pair_signatures[
                            (table.sig[w], table.sig[s])] += 1
            self.arc_count[s] = arcs
            self.ub[s] = min(arcs, cap)

    # ------------------------------------------------------------------

    @property
    def static_bound(self):
        """Upper bound on events if every static site executed once."""
        return sum(self.ub)

    def bound_for_trace(self, trace):
        """Upper bound on ``CollapseStats.events`` for this trace.

        The trace must come from the same program (``sidx`` indexes this
        program's instruction list, as emu traces do).
        """
        ub = self.ub
        return sum(ub[s] for s in trace.sidx)

    def summary_rows(self):
        """Rows (index, line, sig, arcs, bound) for consumers with
        static opportunity, for the CLI ``--bounds`` table."""
        rows = []
        instrs = self.program.instructions
        for s, bound in enumerate(self.ub):
            if bound:
                line = instrs[s].line
                rows.append((s, line if line is not None else 0,
                             self.table.sig[s], self.arc_count[s], bound))
        return rows


__all__ = ["StaticCollapseBound"]
