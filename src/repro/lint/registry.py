"""Declarative lint-pass registry.

Mirrors :func:`repro.core.config.register_config`: a pass registers
itself once with :func:`register_lint_pass` and the driver
(:func:`repro.lint.analyzer.lint_program`) iterates
:func:`lint_passes`, so a new pass reaches ``repro lint`` (and
``--all``) structurally — there is no hand-maintained call list to
forget to extend.

A pass is a callable ``fn(ctx)`` receiving a :class:`LintContext`; it
returns an iterable of :class:`~repro.lint.findings.Finding` (or
``None``) and may attach analysis objects to ``ctx.report`` and share
intermediates with later passes through ``ctx.shared`` (e.g. the
address-classification pass publishes ``ctx.shared["addr_classes"]``
for the recurrence pass, which in turn publishes
``ctx.shared["recurrence"]`` for the DAE slicer).
"""


class LintContext:
    """Everything one lint run hands to its passes."""

    __slots__ = ("program", "cfg", "file", "rules", "report", "shared")

    def __init__(self, program, cfg, file, rules, report):
        self.program = program
        self.cfg = cfg
        self.file = file
        #: CollapseRules override (None = paper rules)
        self.rules = rules
        self.report = report
        #: pass-to-pass scratch space, keyed by convention on pass name
        self.shared = {}


class LintPass:
    """One registered pass: metadata plus the callable.

    ``flags`` names the ``repro lint`` CLI switches the pass backs
    (table and check flags), so ``repro lint --list`` can render the
    full pass/slot/flags table without a hand-maintained mapping.
    """

    __slots__ = ("name", "title", "order", "fn", "flags")

    def __init__(self, name, title, order, fn, flags=()):
        self.name = name
        self.title = title
        self.order = order
        self.fn = fn
        self.flags = tuple(flags)

    def run(self, ctx):
        return self.fn(ctx)

    def __repr__(self):
        return "<LintPass %s (order %d)>" % (self.name, self.order)


#: name -> LintPass; mutated only through (un)register_lint_pass
LINT_PASSES = {}


def register_lint_pass(name, title, order=100, flags=()):
    """Decorator registering ``fn(ctx)`` as lint pass ``name``.

    ``order`` fixes the execution sequence (ties break on name), which
    matters for passes consuming ``ctx.shared`` products of earlier
    ones.  ``flags`` lists the CLI switches the pass backs (for
    ``repro lint --list``).  Registering a taken name raises
    ``ValueError`` — redefine a pass by unregistering it first.
    """
    def decorate(fn):
        if name in LINT_PASSES:
            raise ValueError("lint pass %r is already registered" % (name,))
        LINT_PASSES[name] = LintPass(name, title, order, fn, flags=flags)
        return fn
    return decorate


def unregister_lint_pass(name):
    """Remove a registered pass (primarily for tests)."""
    del LINT_PASSES[name]


def lint_passes():
    """All registered passes in execution order."""
    return sorted(LINT_PASSES.values(),
                  key=lambda p: (p.order, p.name))


__all__ = ["LintContext", "LintPass", "LINT_PASSES",
           "register_lint_pass", "unregister_lint_pass", "lint_passes"]
