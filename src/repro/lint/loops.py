"""Dominator tree and natural-loop detection over the lint CFG.

Built on the *strict* successor relation of
:class:`~repro.lint.cfg.ControlFlowGraph` (the walk the emulator
actually takes, minus computed jumps whose continuation belongs to the
caller).  Instruction granularity keeps the machinery uniform with the
dataflow passes: programs here are a few hundred instructions, so the
simple iterative dominator fixpoint (Cooper/Harvey/Kennedy over reverse
postorder) is plenty fast.

A *natural loop* is the classic construct: a back edge ``t -> h`` whose
target ``h`` dominates its source ``t``, plus every node that can reach
``t`` without passing through ``h``.  Back edges sharing a header are
merged into one loop.  A retreating edge whose target does **not**
dominate its source marks an *irreducible* region (multiple-entry
cycle); those edges are reported separately and the address
classification treats everything reachable in such a region
conservatively.
"""


class DominatorTree:
    """Immediate dominators for the reachable part of a strict CFG."""

    def __init__(self, cfg):
        self.cfg = cfg
        n = cfg.n
        #: reverse postorder of reachable nodes (entry first)
        self.rpo = self._reverse_postorder()
        self._rpo_index = {node: i for i, node in enumerate(self.rpo)}
        #: immediate dominator per instruction (None when unreachable;
        #: the entry dominates itself)
        self.idom = [None] * n
        self._compute()

    def _reverse_postorder(self):
        cfg = self.cfg
        if not cfg.n:
            return []
        seen = set()
        order = []
        # Iterative DFS with an explicit post stack.
        stack = [(cfg.entry, iter(cfg.successors(cfg.entry)))]
        seen.add(cfg.entry)
        while stack:
            node, succs = stack[-1]
            advanced = False
            for s in succs:
                if s < cfg.n and s not in seen:
                    seen.add(s)
                    stack.append((s, iter(cfg.successors(s))))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        return order

    def _compute(self):
        cfg = self.cfg
        rpo = self.rpo
        if not rpo:
            return
        index = self._rpo_index
        preds = [[] for _ in range(cfg.n)]
        for node in rpo:
            for s in cfg.successors(node):
                if s < cfg.n and s in index:
                    preds[s].append(node)
        idom = self.idom
        entry = cfg.entry
        idom[entry] = entry
        changed = True
        while changed:
            changed = False
            for node in rpo:
                if node == entry:
                    continue
                new_idom = None
                for p in preds[node]:
                    if idom[p] is None:
                        continue
                    if new_idom is None:
                        new_idom = p
                    else:
                        new_idom = self._intersect(new_idom, p)
                if new_idom is not None and idom[node] != new_idom:
                    idom[node] = new_idom
                    changed = True

    def _intersect(self, a, b):
        index = self._rpo_index
        idom = self.idom
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    def dominates(self, a, b):
        """True when ``a`` dominates ``b`` (reflexive)."""
        idom = self.idom
        if idom[b] is None or idom[a] is None:
            return False
        entry = self.cfg.entry
        node = b
        while True:
            if node == a:
                return True
            if node == entry:
                return False
            node = idom[node]


class Loop:
    """One natural loop: header, merged back edges, body, nesting."""

    __slots__ = ("header", "body", "back_edges", "parent", "children",
                 "depth")

    def __init__(self, header, body, back_edges):
        self.header = header
        self.body = frozenset(body)
        self.back_edges = tuple(sorted(back_edges))
        self.parent = None
        self.children = []
        self.depth = 1

    def __contains__(self, node):
        return node in self.body

    def __repr__(self):
        return "<Loop header=%d depth=%d |body|=%d>" % (
            self.header, self.depth, len(self.body))


class LoopForest:
    """All natural loops of one program, nested into a forest.

    Attributes
    ----------
    loops: list of :class:`Loop`, sorted by header index
    irreducible_edges: retreating edges ``(tail, head)`` whose head does
        not dominate the tail — entries into a multiple-entry cycle
    """

    def __init__(self, cfg, domtree=None):
        self.cfg = cfg
        self.dom = domtree if domtree is not None else DominatorTree(cfg)
        self.irreducible_edges = []
        self.loops = self._find_loops()
        self._nest()
        self._innermost = self._map_innermost()

    # ------------------------------------------------------------------

    def _find_loops(self):
        cfg = self.cfg
        dom = self.dom
        back_by_header = {}
        # A retreating edge goes from a node to one at an equal-or-
        # earlier reverse-postorder position; it is a back edge (and
        # delimits a natural loop) only when the head dominates the
        # tail.
        rpo_index = dom._rpo_index
        for tail in dom.rpo:
            for head in cfg.successors(tail):
                if head >= cfg.n or head not in rpo_index:
                    continue
                if rpo_index[head] <= rpo_index[tail]:
                    if dom.dominates(head, tail):
                        back_by_header.setdefault(head, []).append(
                            (tail, head))
                    else:
                        self.irreducible_edges.append((tail, head))
        loops = []
        for header, edges in back_by_header.items():
            loops.append(Loop(header, self._loop_body(header, edges),
                              edges))
        loops.sort(key=lambda loop: loop.header)
        return loops

    def _loop_body(self, header, back_edges):
        """Nodes that reach a back-edge tail without passing the
        header, plus the header itself (the standard construction over
        reversed edges)."""
        cfg = self.cfg
        preds = [[] for _ in range(cfg.n)]
        for i in range(cfg.n):
            for s in cfg.successors(i):
                if s < cfg.n:
                    preds[s].append(i)
        body = {header}
        stack = [tail for tail, _ in back_edges]
        while stack:
            node = stack.pop()
            if node in body:
                continue
            body.add(node)
            stack.extend(p for p in preds[node] if p not in body)
        return body

    def _nest(self):
        """Parent each loop under the smallest strictly-containing
        loop; loops with the same header were already merged."""
        by_size = sorted(self.loops, key=lambda loop: len(loop.body))
        for i, inner in enumerate(by_size):
            for outer in by_size[i + 1:]:
                if inner.header in outer.body \
                        and inner.body <= outer.body \
                        and inner is not outer:
                    inner.parent = outer
                    outer.children.append(inner)
                    break
        for loop in self.loops:
            depth = 1
            parent = loop.parent
            while parent is not None:
                depth += 1
                parent = parent.parent
            loop.depth = depth

    def _map_innermost(self):
        innermost = {}
        for loop in sorted(self.loops, key=lambda l: -len(l.body)):
            for node in loop.body:
                innermost[node] = loop
        return innermost

    # ------------------------------------------------------------------

    def loop_of(self, node):
        """Innermost loop containing ``node``, or None."""
        return self._innermost.get(node)

    def in_irreducible_region(self, node):
        """True when ``node`` can be part of a multiple-entry cycle.

        Conservative: any node that reaches (or is reached from) the
        head of an irreducible retreating edge within the cycle would
        need a full SCC computation; we flag the whole SCC of each
        irreducible edge head instead.
        """
        return node in self._irreducible_nodes()

    def _irreducible_nodes(self):
        if not self.irreducible_edges:
            return frozenset()
        if not hasattr(self, "_irr_cache"):
            self._irr_cache = self._compute_irreducible_nodes()
        return self._irr_cache

    def _compute_irreducible_nodes(self):
        """Union of the strongly connected components containing each
        irreducible retreating edge (Tarjan over the strict CFG)."""
        cfg = self.cfg
        n = cfg.n
        index = [None] * n
        low = [0] * n
        on_stack = [False] * n
        stack = []
        sccs = []
        counter = [0]

        def strongconnect(v0):
            work = [(v0, 0)]
            while work:
                v, pi = work[-1]
                if pi == 0:
                    index[v] = low[v] = counter[0]
                    counter[0] += 1
                    stack.append(v)
                    on_stack[v] = True
                recurse = False
                succs = [s for s in cfg.successors(v) if s < n]
                while pi < len(succs):
                    w = succs[pi]
                    pi += 1
                    if index[w] is None:
                        work[-1] = (v, pi)
                        work.append((w, 0))
                        recurse = True
                        break
                    elif on_stack[w]:
                        low[v] = min(low[v], index[w])
                if recurse:
                    continue
                if low[v] == index[v]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        scc.append(w)
                        if w == v:
                            break
                    if len(scc) > 1 or v in cfg.successors(v):
                        sccs.append(frozenset(scc))
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])

        for v in range(n):
            if index[v] is None and v in self.cfg.reachable:
                strongconnect(v)
        flagged = set()
        for tail, head in self.irreducible_edges:
            for scc in sccs:
                if head in scc and tail in scc:
                    flagged |= scc
        return frozenset(flagged)


__all__ = ["DominatorTree", "Loop", "LoopForest"]
