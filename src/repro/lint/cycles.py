"""Elementary-cycle enumeration (Johnson 1975).

The recurrence analyzer (:mod:`repro.lint.recurrence`) needs every
*elementary* cycle — a closed walk visiting no node twice — of the
per-loop static dependence graph: each one is a candidate recurrence
whose latency/distance ratio bounds the initiation interval.  Donald
Johnson's algorithm enumerates them in output-polynomial time
(``O((n + e)(c + 1))`` for ``c`` cycles) via the classic
blocked/unblock machinery, processing one strongly connected component
at a time so every cycle is reported exactly once, rooted at its
smallest node.

Graphs here are loop bodies — tens of nodes — but the enumeration is
still capped (``limit``) because a pathological dependence mesh can
hold exponentially many cycles.  Truncation is *sound* for the
recurrence bounds (missing a cycle can only weaken them), but callers
surface it as a note.
"""


def _scc_component(graph, start):
    """The strongly connected component of ``start`` in ``graph``
    (adjacency dict), or None when ``start`` lies on no cycle.

    Iterative Tarjan restricted to nodes reachable from ``start``.
    A single node counts only when it has a self edge.
    """
    index = {}
    low = {}
    on_stack = set()
    stack = []
    result = [None]
    counter = [0]
    work = [(start, 0, None)]
    while work:
        v, pi, _ = work[-1]
        if pi == 0:
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
        succs = graph.get(v, ())
        recursed = False
        while pi < len(succs):
            w = succs[pi]
            pi += 1
            if w not in index:
                work[-1] = (v, pi, None)
                work.append((w, 0, None))
                recursed = True
                break
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if recursed:
            continue
        if low[v] == index[v]:
            scc = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                scc.append(w)
                if w == v:
                    break
            if start in scc and (len(scc) > 1
                                 or start in graph.get(start, ())):
                result[0] = frozenset(scc)
        work.pop()
        if work:
            parent = work[-1][0]
            low[parent] = min(low[parent], low[v])
    return result[0]


def elementary_cycles(graph, limit=1024):
    """All elementary cycles of a directed graph.

    ``graph`` maps each node to an iterable of successors (nodes must
    be comparable and hashable; edges to nodes outside the dict are
    ignored).  Returns ``(cycles, truncated)``: each cycle is a list of
    nodes starting at its smallest member, in edge order; ``truncated``
    is True when ``limit`` stopped the enumeration early.
    """
    nodes = sorted(graph)
    adjacency = {u: sorted(w for w in set(graph[u]) if w in graph)
                 for u in nodes}
    cycles = []
    truncated = False

    for s in nodes:
        if truncated:
            break
        # Subgraph induced on nodes >= s; only the SCC of s can hold
        # cycles whose smallest node is s.
        sub = {u: [w for w in adjacency[u] if w >= s]
               for u in nodes if u >= s}
        component = _scc_component(sub, s)
        if component is None:
            continue
        comp_adj = {u: [w for w in sub[u] if w in component]
                    for u in component}
        blocked = set()
        blocked_by = {}
        path = []

        def unblock(u):
            queue = [u]
            while queue:
                v = queue.pop()
                if v in blocked:
                    blocked.discard(v)
                    queue.extend(blocked_by.pop(v, ()))

        # Iterative circuit(s): frames are (node, successor iterator,
        # found-flag holder).
        def circuit(root):
            nonlocal truncated
            found_any = False
            frames = [[root, iter(comp_adj[root]), False]]
            path.append(root)
            blocked.add(root)
            while frames:
                frame = frames[-1]
                v, succs, _ = frame
                advanced = False
                for w in succs:
                    if len(cycles) >= limit:
                        truncated = True
                        break
                    if w == root:
                        cycles.append(list(path))
                        frame[2] = True
                    elif w not in blocked:
                        frames.append([w, iter(comp_adj[w]), False])
                        path.append(w)
                        blocked.add(w)
                        advanced = True
                        break
                if advanced:
                    continue
                frames.pop()
                path.pop()
                if frame[2]:
                    unblock(v)
                    found_any = True
                    if frames:
                        frames[-1][2] = True
                else:
                    for w in comp_adj[v]:
                        blocked_by.setdefault(w, set()).add(v)
                if truncated:
                    while frames:
                        frames.pop()
                        path.pop()
            return found_any

        circuit(s)
    return cycles, truncated


__all__ = ["elementary_cycles"]
