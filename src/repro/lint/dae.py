"""Static access/execute loop slicing (decoupled access/execute).

ROADMAP item 3: the compiler-side counterpart of the paper's "loads
should reach the window as fast as dependences allow".  Following
Szafarczyk et al. (PAPERS.md), each innermost reducible loop is split
into an *access* stream — address computation plus the loads
themselves — and an *execute* stream consuming the loaded values
through bounded FIFO queues.  Decoupling is only legal when the access
stream never waits on the execute stream, i.e. when no load-derived
value feeds a load address: exactly the ``chase`` class test of
:mod:`repro.lint.addrclass`, lifted from single loads to whole slices.

For every load the pass computes the backward *address cone*: the
closure of the load's address inputs over the dependence edges of the
loop body.  Register and condition-code steps follow the
reaching-writer masks of :meth:`RecurrenceAnalysis.body_reaching`
(*may* writers — a superset of the must edges the recurrence graph
keeps, so the cone over-approximates and the clean verdict stays
sound), with loop-carried uses expanded one step through the merged
back-edge state; memory steps follow the must-alias store-to-load
edges of the recurrence graph.  The loop is

``clean``
    no cone contains a body load: the access slice (loads plus the
    union of cones) is self-contained and may run arbitrarily far
    ahead of the execute slice;
``chase-poisoned``
    some load's address cone contains a load — decoupling the loop
    would just move the pointer-chase stall into the access stream;
``skipped``
    no verdict: a call in the body, an irreducible header, or body
    nodes the reaching analysis does not cover ("uncapped chase
    coverage").  Each skip is a located ``dae-skip`` warning.

For clean loops the pass also derives the *minimum queue depth*: every
boundary load (a load whose value leaves the access slice) needs one
queue slot per iteration it runs ahead, and the access slice can run
ahead one iteration per ``recMII(access)`` cycles while the execute
slice retires one per ``recMII(body)``; a load latency plus that gap,
divided by the access recMII and with one slot of slack, bounds the
useful run-ahead.  :func:`dae_cross_check` proves the static story
against a configuration-H simulation (``MachineConfig.dae``): clean
loops incur zero dynamic chase dependences and dynamic peak queue
occupancy never exceeds the static depth.
"""

from fractions import Fraction

from ..trace.records import LD, ST
from .findings import Finding, SEV_WARNING
from .recurrence import RecurrenceAnalysis, _CC, _NUM_SLOTS

#: per-loop verdicts
VERDICT_CLEAN = "clean"
VERDICT_POISONED = "chase-poisoned"
VERDICT_SKIPPED = "skipped"


class _Uncapped(Exception):
    """A body node escapes the reaching-writer analysis."""


def _bits(mask):
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def _frac_ceil(value):
    return -(-value.numerator // value.denominator)


class DAELoop:
    """Slicing result for one innermost loop."""

    __slots__ = ("header", "line", "rec", "verdict", "reason", "body",
                 "loads", "cones", "access", "boundary", "execute",
                 "access_recmii", "body_recmii", "depth")

    def __init__(self, header, line, rec):
        self.header = header
        self.line = line
        self.rec = rec
        self.verdict = VERDICT_SKIPPED
        self.reason = ""
        self.body = frozenset()
        self.loads = frozenset()
        #: load index -> frozenset of address-cone members
        self.cones = {}
        self.access = frozenset()
        self.boundary = frozenset()
        self.execute = frozenset()
        self.access_recmii = None   # Fraction | None
        self.body_recmii = None     # Fraction | None
        self.depth = 0              # static queue-depth bound

    @property
    def access_fraction(self):
        if not self.body:
            return 0.0
        return len(self.access) / float(len(self.body))

    def __repr__(self):
        return "<DAELoop #%d %s access=%d/%d depth=%d>" % (
            self.header, self.verdict, len(self.access),
            len(self.body), self.depth)


class DAEAnalysis:
    """Access/execute slices over all innermost reducible loops."""

    def __init__(self, program, cfg=None, forest=None, classes=None,
                 recurrence=None):
        if recurrence is None:
            recurrence = RecurrenceAnalysis(program, cfg=cfg,
                                            forest=forest,
                                            classes=classes)
        self.program = program
        self.recurrence = recurrence
        self.table = recurrence.table
        self._header_bit = 1 << recurrence.cfg.n
        #: loop header -> (in_state, carried_bits, mem_srcs)
        self._context = {}
        self.loops = []
        instrs = program.instructions
        for rec in recurrence.loops:
            self.loops.append(self._slice(rec))
        for header in recurrence.irreducible:
            ins = instrs[header]
            dl = DAELoop(header,
                         ins.line if ins.line is not None else 0, None)
            dl.reason = "irreducible loop"
            self.loops.append(dl)
        self.loops.sort(key=lambda dl: dl.header)

    # -- slice construction --------------------------------------------

    def _slice(self, rec):
        instrs = self.program.instructions
        header = rec.loop.header
        ins = instrs[header]
        dl = DAELoop(header, ins.line if ins.line is not None else 0,
                     rec)
        dl.body = frozenset(rec.loop.body)
        if rec.note:
            dl.reason = rec.note
            return dl
        table = self.table
        dl.loads = frozenset(i for i in dl.body
                             if table.cls[i] == LD)
        in_state, carried = self.recurrence.body_reaching(rec.loop)
        if carried is None:
            dl.reason = "uncapped chase coverage"
            return dl
        carried_bits = [frozenset(_bits(carried[r] & ~self._header_bit))
                        for r in range(_NUM_SLOTS)]
        mem_srcs = {}
        for edge in rec.edges:
            if edge.kind == "mem":
                mem_srcs.setdefault(edge.dst, set()).add(edge.src)
        ctx = (in_state, carried_bits, mem_srcs)
        self._context[header] = ctx
        try:
            cones = {}
            for load in sorted(dl.loads):
                slots = [s for s in (table.src1[load],
                                     table.src2[load]) if s >= 0]
                seeds = self._expand(ctx, load, slots)
                cones[load] = frozenset(self._value_closure(ctx, seeds))
            access = set(dl.loads)
            for cone in cones.values():
                access |= cone
            # boundary: loads whose value leaves the access slice (or
            # is never read in-body at all)
            readers = {load: set() for load in dl.loads}
            for i in dl.body:
                for p in self._expand(ctx, i, self._read_slots(i)):
                    if p in readers:
                        readers[p].add(i)
        except _Uncapped:
            del self._context[header]
            dl.reason = "uncapped chase coverage"
            return dl
        dl.cones = cones
        dl.access = frozenset(access)
        dl.boundary = frozenset(
            load for load in dl.loads
            if not readers[load]
            or any(r not in access for r in readers[load]))
        dl.execute = frozenset(dl.body - dl.access) | dl.boundary
        poisoners = sorted(i for cone in cones.values()
                           for i in cone if i in dl.loads)
        if poisoners:
            dl.verdict = VERDICT_POISONED
            dl.reason = ("load-derived address via load%s #%s"
                         % ("s" if len(set(poisoners)) > 1 else "",
                            ", #".join(str(i)
                                       for i in sorted(set(poisoners)))))
            return dl
        dl.verdict = VERDICT_CLEAN
        self._depth(dl)
        return dl

    def _read_slots(self, node):
        table = self.table
        slots = []
        for s in (table.src1[node], table.src2[node]):
            if s >= 0 and s not in slots:
                slots.append(s)
        if table.cls[node] == ST and table.datasrc[node] >= 0 \
                and table.datasrc[node] not in slots:
            slots.append(table.datasrc[node])
        if table.reads_cc[node]:
            slots.append(_CC)
        return slots

    def _expand(self, ctx, node, slots):
        """May-writers of ``node``'s value in the given register/cc
        slots, with loop-carried uses expanded one step through the
        merged back-edge state (a fixed point: the carried state's own
        header bit stands for values older than the current run, which
        the dynamic chase accounting excludes)."""
        in_state, carried_bits, _ = ctx
        state = in_state.get(node)
        if state is None:
            raise _Uncapped()
        out = set()
        for r in slots:
            mask = state[r]
            if mask & self._header_bit:
                out.update(carried_bits[r])
                mask &= ~self._header_bit
            out.update(_bits(mask))
        return out

    def _value_closure(self, ctx, seeds):
        """Closure of value-needed nodes over register/cc may-producers
        and must-alias memory edges (a load whose *value* is needed
        pulls in its must-alias store)."""
        mem_srcs = ctx[2]
        table = self.table
        out = set()
        work = list(seeds)
        while work:
            p = work.pop()
            if p in out:
                continue
            out.add(p)
            for q in self._expand(ctx, p, self._read_slots(p)):
                if q not in out:
                    work.append(q)
            if table.cls[p] == LD:
                for q in mem_srcs.get(p, ()):
                    if q not in out:
                        work.append(q)
        return out

    def slice_closure(self, dl, nodes):
        """Public closure operator for property tests: the given nodes
        plus the value closure of every member's producers.  The access
        slice of an analyzed loop is a fixed point of this operator."""
        ctx = self._context[dl.header]
        members = set(nodes)
        value_needed = set()
        for m in members:
            value_needed |= self._expand(ctx, m, self._read_slots(m))
        return frozenset(members | self._value_closure(ctx,
                                                       value_needed))

    # -- queue-depth bound ---------------------------------------------

    def _depth(self, dl):
        """Minimum queue depth for a clean loop's boundary loads.

        The access slice initiates one iteration per
        ``recMII(access-only cycles)`` cycles; the whole body retires
        one per ``recMII(body)``.  While a boundary load's value is in
        flight (its latency) plus while the execute slice lags (the
        recMII gap), each boundary load occupies one slot per iteration
        started; one extra slot of slack covers the enqueue/pop skew.
        """
        rec = dl.rec
        if not dl.boundary:
            dl.body_recmii = rec.recmii("A")
            return
        access_ratios = []
        for cycle in rec.cycles:
            if set(cycle.nodes) <= dl.access:
                ratio = cycle.ratio("A")
                if ratio is not None:
                    access_ratios.append(ratio)
        dl.access_recmii = max(access_ratios) if access_ratios else None
        dl.body_recmii = rec.recmii("A")
        access_eff = dl.access_recmii or Fraction(1)
        full = dl.body_recmii or access_eff
        gap = full - access_eff
        if gap < 0:
            gap = Fraction(0)
        load_lat = max(self.table.lat[load] for load in dl.boundary)
        dl.depth = len(dl.boundary) * (
            1 + _frac_ceil((load_lat + gap) / access_eff))

    # -- reporting -----------------------------------------------------

    def findings(self, file="<program>"):
        """``dae-skip`` warnings for loops the slicer drops."""
        found = []
        for dl in self.loops:
            if dl.verdict != VERDICT_SKIPPED:
                continue
            found.append(Finding(
                "dae-skip",
                "loop at instruction #%d skipped by the access/execute "
                "slicer (%s); its loads stay coupled"
                % (dl.header, dl.reason or "no verdict"),
                file=file, line=dl.line, index=dl.header,
                severity=SEV_WARNING))
        return found

    def summary_rows(self):
        """Rows (header line, body, loads, verdict, access, access %,
        boundary, recMII acc/body, depth, note) for ``--dae``."""

        def fmt_recmii(value):
            if value is None:
                return "-"
            ceil = _frac_ceil(value)
            return "%d (%s)" % (ceil, value) \
                if value.denominator != 1 else str(ceil)

        rows = []
        for dl in self.loops:
            rows.append([
                dl.line, len(dl.body), len(dl.loads), dl.verdict,
                len(dl.access), "%.0f%%" % (100.0 * dl.access_fraction),
                len(dl.boundary),
                fmt_recmii(dl.access_recmii),
                fmt_recmii(dl.body_recmii),
                dl.depth if dl.depth else "-",
                dl.reason or "-",
            ])
        return rows

    # -- the dynamic-side contract -------------------------------------

    def plan(self):
        """Build the :class:`DAEPlan` configuration H consumes."""
        access_of = {}
        boundary_of = {}
        body_of = {}
        chase_of = {}
        body_loads = {}
        capacity = {}
        clean = set()
        claimed = set()
        for dl in self.loops:
            if dl.verdict == VERDICT_SKIPPED:
                continue
            if claimed & dl.body:
                continue            # overlapping bodies: first wins
            claimed |= dl.body
            for i in dl.body:
                body_of[i] = dl.header
            body_loads[dl.header] = dl.loads
            for i in dl.access:
                chase_of[i] = dl.header
            if dl.verdict == VERDICT_CLEAN and dl.boundary:
                clean.add(dl.header)
                capacity[dl.header] = dl.depth
                for i in dl.access:
                    access_of[i] = dl.header
                for i in dl.boundary:
                    boundary_of[i] = dl.header
        return DAEPlan(static_signature(self.table), access_of,
                       boundary_of, body_of, chase_of, body_loads,
                       capacity, frozenset(clean))


def static_signature(table):
    """Canonical per-instruction tuple used to pin a :class:`DAEPlan`
    to the program it was derived from."""
    return tuple(
        (int(table.cls[i]), int(table.dest[i]), int(table.src1[i]),
         int(table.src2[i]), int(table.datasrc[i]), int(table.lat[i]),
         int(bool(table.reads_cc[i])), int(bool(table.writes_cc[i])))
        for i in range(len(table.cls)))


class DAEPlan:
    """The static slicing contract handed to the scheduler.

    Duck-typed by :class:`repro.core.scheduler.WindowScheduler` and
    :class:`repro.lint.sanitize.SchedulerSanitizer`; all maps are keyed
    by static instruction index and map to loop headers.
    """

    __slots__ = ("signature", "access_of", "boundary_of", "body_of",
                 "chase_of", "body_loads", "capacity", "clean")

    def __init__(self, signature, access_of, boundary_of, body_of,
                 chase_of, body_loads, capacity, clean):
        for header, depth in capacity.items():
            if depth < 1:
                raise ValueError(
                    "DAE queue depth for loop #%d must be >= 1, got %r"
                    % (header, depth))
        self.signature = signature
        self.access_of = access_of      # access member -> clean header
        self.boundary_of = boundary_of  # boundary load -> clean header
        self.body_of = body_of          # body member -> header (all)
        self.chase_of = chase_of        # access member -> header (all)
        self.body_loads = body_loads    # header -> frozenset of loads
        self.capacity = capacity        # clean header -> queue depth
        self.clean = clean              # headers of queued loops

    def validate(self, static):
        """Raise ValueError when ``static`` (a StaticTable) is not the
        program this plan was sliced from."""
        if static_signature(static) != self.signature:
            raise ValueError(
                "DAE plan does not match the trace's static program; "
                "rebuild the plan from the same workload and scale")

    def __repr__(self):
        return "<DAEPlan %d clean loops, %d access members>" % (
            len(self.clean), len(self.access_of))


class DAECheck:
    """Outcome of :func:`dae_cross_check` (mirrors ``MemDepCheck``)."""

    __slots__ = ("violations", "loops_checked", "clean_loops",
                 "queued_loops", "poisoned_loops", "skipped_loops",
                 "peak", "enqueued", "popped", "chase_deps")

    def __init__(self):
        self.violations = []
        self.loops_checked = 0
        self.clean_loops = 0
        self.queued_loops = 0
        self.poisoned_loops = 0
        self.skipped_loops = 0
        self.peak = 0
        self.enqueued = 0
        self.popped = 0
        self.chase_deps = 0

    @property
    def ok(self):
        return not self.violations


def dae_cross_check(analysis, trace, result):
    """Prove the static slices against a configuration-H simulation.

    Checks, per loop: (a) a statically-clean loop records zero dynamic
    chase dependences (no load-derived value reached an access-slice
    consumer within a run), (b) dynamic peak queue occupancy stays
    within the static depth bound, (c) queue pops never exceed
    enqueues.  ``result`` must come from a ``dae=True`` configuration
    simulated with the plan of ``analysis``.
    """
    plan = analysis.plan()
    plan.validate(trace.static)
    check = DAECheck()
    verdicts = {dl.header: dl.verdict for dl in analysis.loops}
    for dl in analysis.loops:
        if dl.verdict == VERDICT_SKIPPED:
            check.skipped_loops += 1
            continue
        check.loops_checked += 1
        if dl.verdict == VERDICT_CLEAN:
            check.clean_loops += 1
        else:
            check.poisoned_loops += 1
    check.queued_loops = len(plan.capacity)
    dae = result.dae
    if dae is None:
        check.violations.append(
            "simulation recorded no DAE statistics (configuration "
            "must set dae=True and pass the plan to the scheduler)")
        return check
    check.peak = dae.peak
    check.enqueued = dae.enqueued
    check.popped = dae.popped
    check.chase_deps = dae.chase_deps
    for header, stats in sorted(dae.loops.items()):
        verdict = verdicts.get(header)
        if verdict is None:
            check.violations.append(
                "dynamic DAE stats for loop #%d, which the static "
                "analysis never produced" % (header,))
            continue
        if verdict == VERDICT_CLEAN and stats.chase_deps:
            check.violations.append(
                "statically-clean loop #%d incurred %d dynamic chase "
                "dependence%s (%d stalled)"
                % (header, stats.chase_deps,
                   "s" if stats.chase_deps != 1 else "",
                   stats.chase_stalls))
        bound = plan.capacity.get(header)
        if bound is not None and stats.peak > bound:
            check.violations.append(
                "loop #%d peak queue occupancy %d exceeds the static "
                "depth bound %d" % (header, stats.peak, bound))
        if stats.popped > stats.enqueued:
            check.violations.append(
                "loop #%d popped %d queue entries but enqueued only %d"
                % (header, stats.popped, stats.enqueued))
    return check


__all__ = ["VERDICT_CLEAN", "VERDICT_POISONED", "VERDICT_SKIPPED",
           "DAEAnalysis", "DAECheck", "DAELoop", "DAEPlan",
           "dae_cross_check", "static_signature"]
