"""Static per-instruction result-value predictability classification.

The address-classification pass (:mod:`repro.lint.addrclass`) asks
*where* a load will point; this pass asks *what value* an instruction
will produce — the static side of the Sazeides & Smith value-locality
taxonomy, and the input to recurrence variant **V**
(:mod:`repro.lint.recurrence`), which prices loop recurrences under
result-value speculation (machine config I).

Every result-producing instruction is classified relative to its
innermost natural loop using the loop-relative value forms of
:mod:`repro.lint.induction` plus the bounded-congruence address
machinery of :mod:`repro.lint.memdep`:

============= =========================================================
``constant``    an immediate materialization (``mov rd, imm`` /
                ``sethi``): the same value every execution
``invariant``   loop-invariant during any single run — for non-loads a
                computation over invariant inputs; for loads an
                invariant address whose word no store in the loop can
                touch (every in-body store proved word-disjoint by the
                bounded-congruence resolver)
``stride``      a basic induction variable's update (``r = r ± imm``
                once per iteration): consecutive results differ by the
                constant step
``affine``      an affine function of a basic IV: constant
                per-iteration result stride (possibly statically
                unknown)
``periodic``    a provable short cycle — currently the XOR toggle
                ``xor r, imm -> r`` executing once per iteration
                (period 2); stride predictors cannot lock onto it, FCM
                predictors can
``load``        the result is (or is derived from) a load the loop
                produced: value known only to memory
``unknown``     everything else (hash mixing, multiple reaching
                definitions, call results, irreducible regions)
``straight``    not inside any natural loop: no per-PC pattern to claim
============= =========================================================

The classes form a join-semilattice ordered by claim strength
(``constant ⊑ invariant ⊑ stride ⊑ affine ⊑ unknown``,
``constant ⊑ periodic ⊑ unknown``, ``load ⊑ unknown``); ``class_join``
returns the weakest claim covering both operands, so merging control
paths can only *lose* precision — the soundness direction.

Two artifacts are derived:

- a **static coverage upper bound** on the stride *value* predictor's
  confident coverage per load PC: the invariant class predicts exact
  steady-state behaviour (misses confined to warmup plus re-lock after
  loop re-entries), every other class carries an audited coverage cap;
  :func:`valueflow_cross_check` asserts both directions against the
  dynamic per-PC histograms of ``repro.vpred``;

- the **variant-V cut set** (:meth:`ValueFlowAnalysis.cut_indices`):
  static indices whose result a value-speculating machine may bypass —
  every load (config I attempts any confident load) plus every
  statically stride/invariant-predictable non-load producer.  Both the
  static recMII variant V and the dynamic graph V cut exactly this
  set, which is what makes the static ceiling a theorem over the
  simulated config-I IPC (see :func:`valueflow_cross_check`).
"""

from ..isa.opcodes import Opcode
from .cfg import ControlFlowGraph
from .dataflow import reg_defs
from .induction import AFFINE, INV, IV, LOAD, LoopValues
from .loops import LoopForest
from .memdep import _add, _const, _disjoint, _Resolver

CLASS_CONSTANT = "constant"
CLASS_INVARIANT = "invariant"
CLASS_STRIDE = "stride"
CLASS_AFFINE = "affine"
CLASS_PERIODIC = "periodic"
CLASS_LOAD = "load"
CLASS_UNKNOWN = "unknown"
CLASS_STRAIGHT = "straight"

ALL_CLASSES = (CLASS_CONSTANT, CLASS_INVARIANT, CLASS_STRIDE,
               CLASS_AFFINE, CLASS_PERIODIC, CLASS_LOAD, CLASS_UNKNOWN,
               CLASS_STRAIGHT)

#: classes whose result stream a two-delta stride predictor locks onto
#: in steady state (constant per-execution delta within a run)
VALUE_PREDICTABLE_CLASSES = frozenset(
    (CLASS_CONSTANT, CLASS_INVARIANT, CLASS_STRIDE, CLASS_AFFINE))

#: upward-closure of each class in the claim-strength order; the join
#: of two classes is the lowest common member.
_UP = {
    CLASS_CONSTANT: frozenset((CLASS_CONSTANT, CLASS_INVARIANT,
                               CLASS_STRIDE, CLASS_AFFINE,
                               CLASS_PERIODIC, CLASS_UNKNOWN)),
    CLASS_INVARIANT: frozenset((CLASS_INVARIANT, CLASS_STRIDE,
                                CLASS_AFFINE, CLASS_UNKNOWN)),
    CLASS_STRIDE: frozenset((CLASS_STRIDE, CLASS_AFFINE, CLASS_UNKNOWN)),
    CLASS_AFFINE: frozenset((CLASS_AFFINE, CLASS_UNKNOWN)),
    CLASS_PERIODIC: frozenset((CLASS_PERIODIC, CLASS_UNKNOWN)),
    CLASS_LOAD: frozenset((CLASS_LOAD, CLASS_UNKNOWN)),
    CLASS_STRAIGHT: frozenset((CLASS_STRAIGHT, CLASS_UNKNOWN)),
    CLASS_UNKNOWN: frozenset((CLASS_UNKNOWN,)),
}

#: rank by generality: larger = weaker claim (higher in the order)
_RANK = {cls: len(_UP) - len(up) for cls, up in _UP.items()}


def class_leq(a, b):
    """True when class ``a`` makes at least as strong a claim as ``b``
    (``a ⊑ b`` in the predictability lattice)."""
    return b in _UP[a]


def class_join(a, b):
    """Least upper bound: the weakest claim soundly covering both."""
    common = _UP[a] & _UP[b]
    return min(common, key=lambda cls: (_RANK[cls], cls))


#: per-class upper bound on the fraction of dynamic loads whose stride
#: value prediction the confidence gate opens for.  1.0 for classes
#: with no negative claim; the ``load`` cap is an audited empirical
#: bound over the registered workloads (see docs/LINT.md) — memory
#: content can be arbitrarily regular (zero fills, sequential IDs), so
#: the cap encodes how regular the suite's actually is, and a violation
#: means the audit needs redoing.  Audit (stride predictor, per-class
#: confident coverage, scales 0.03/0.05/0.2): the ``load`` class peaks
#: at 0.233 (compress @ 0.03); 0.5 doubles that margin.
VALUE_COVERAGE_CAP = {
    CLASS_CONSTANT: 1.0,
    CLASS_INVARIANT: 1.0,
    CLASS_STRIDE: 1.0,
    CLASS_AFFINE: 1.0,
    CLASS_PERIODIC: 1.0,
    CLASS_LOAD: 0.5,
    CLASS_UNKNOWN: 1.0,
    CLASS_STRAIGHT: 1.0,
}

#: two-delta warmup: a cold entry needs at most 3 observations before
#: a stride-0 value stream predicts (see repro.vpred.stride)
WARMUP_MISSES = 3
#: misses per observed value-stride change before the table re-locks
RELOCK_MISSES = 2
#: per-PC checks need this many observations to be meaningful
MIN_OBSERVATIONS = 16
#: slack on the stride-change budget for invariant sites, on top of
#: the entry-derived term (see :func:`valueflow_cross_check`)
STABILITY_BASE = 4

#: relative tolerance of the IPC-chain comparisons (matches ipcbound)
_REL_TOL = 1e-9

_CALL_OPS = frozenset((Opcode.CALL, Opcode.JMPL))
_TOGGLE_OPS = frozenset((Opcode.XOR, Opcode.XORCC))
_CONST_OPS = frozenset((Opcode.SETHI,))


class ValueSite:
    """One static result-producing instruction with its value class."""

    __slots__ = ("index", "line", "pc", "cls", "stride", "period",
                 "loop", "note")

    def __init__(self, index, line, pc, cls, stride=None, period=None,
                 loop=None, note=""):
        self.index = index
        self.line = line
        self.pc = pc
        self.cls = cls
        self.stride = stride    # per-iteration result stride when known
        self.period = period    # period k for the periodic class
        self.loop = loop        # innermost Loop or None
        self.note = note

    def __repr__(self):
        return "<ValueSite #%d %s stride=%r period=%r>" % (
            self.index, self.cls, self.stride, self.period)


class ValueFlowAnalysis:
    """Per-program result-value classification of every instruction
    that writes a register."""

    def __init__(self, program, cfg=None, forest=None, values=None):
        self.program = program
        self.cfg = cfg if cfg is not None else ControlFlowGraph(program)
        self.forest = forest if forest is not None \
            else LoopForest(self.cfg)
        self.values = values if values is not None \
            else LoopValues(program, self.cfg, self.forest)
        self._resolver = _Resolver(program, self.cfg, self.forest,
                                   self.values)
        self.sites = []
        self.by_index = {}
        self.load_sites = []        # the cross-check universe
        self._store_forms = {}      # loop header -> [(index, form)]
        self._classify()

    def _classify(self):
        for i, ins in enumerate(self.program.instructions):
            if ins.is_store or ins.rd <= 0:
                continue            # no architectural result (%g0 sinks)
            site = self._classify_site(i, ins)
            self.sites.append(site)
            self.by_index[i] = site
            if ins.is_load:
                self.load_sites.append(site)

    def _classify_site(self, i, ins):
        line = ins.line
        pc = self.program.address_of_index(i)
        loop = self.forest.loop_of(i)
        if loop is None:
            return ValueSite(i, line, pc, CLASS_STRAIGHT)
        if self.forest.in_irreducible_region(i):
            return ValueSite(i, line, pc, CLASS_UNKNOWN, loop=loop,
                             note="irreducible region")
        if ins.is_load:
            return self._classify_load(i, ins, loop)
        if ins.opcode in _CALL_OPS:
            return ValueSite(i, line, pc, CLASS_UNKNOWN, loop=loop,
                             note="call result")
        kind, stride = self.values._def_form(i, loop, set())
        if kind == INV:
            if ins.opcode in _CONST_OPS \
                    or (ins.opcode is Opcode.MOV and ins.imm is not None):
                return ValueSite(i, line, pc, CLASS_CONSTANT, stride=0,
                                 loop=loop)
            return ValueSite(i, line, pc, CLASS_INVARIANT, stride=0,
                             loop=loop)
        if kind == IV:
            return ValueSite(i, line, pc, CLASS_STRIDE, stride=stride,
                             loop=loop)
        if kind == AFFINE:
            iv = self.values.ivs_of(loop).get(ins.rd)
            if iv is not None and i in iv.sites:
                # The IV's own update: results walk the step exactly.
                return ValueSite(i, line, pc, CLASS_STRIDE,
                                 stride=stride, loop=loop)
            return ValueSite(i, line, pc, CLASS_AFFINE, stride=stride,
                             loop=loop)
        if kind == LOAD:
            return ValueSite(i, line, pc, CLASS_LOAD, loop=loop)
        period = self._toggle_period(i, ins, loop)
        if period is not None:
            return ValueSite(i, line, pc, CLASS_PERIODIC, period=period,
                             loop=loop)
        return ValueSite(i, line, pc, CLASS_UNKNOWN, loop=loop)

    # -- loads: invariant value iff invariant address + no in-loop write

    def _classify_load(self, i, ins, loop):
        line = ins.line
        pc = self.program.address_of_index(i)
        if ins.rs1 >= 0:
            base = self.values.form(ins.rs1, i, loop)
            if ins.imm is not None or ins.rs2 < 0:
                offset = (INV, 0)
            else:
                offset = self.values.form(ins.rs2, i, loop)
            if base[0] != INV or offset[0] != INV:
                return ValueSite(i, line, pc, CLASS_LOAD, loop=loop,
                                 note="address varies in loop")
        if self._loop_has_call(loop):
            return ValueSite(i, line, pc, CLASS_LOAD, loop=loop,
                             note="call in loop may store")
        form = self._ref_form(i, ins)
        if form is None:
            return ValueSite(i, line, pc, CLASS_LOAD, loop=loop,
                             note="address unresolved")
        for store, store_form in self._stores_of(loop):
            if store_form is None \
                    or not _disjoint(form, store_form):
                return ValueSite(i, line, pc, CLASS_LOAD, loop=loop,
                                 note="store #%d may alias" % (store,))
        return ValueSite(i, line, pc, CLASS_INVARIANT, stride=0,
                         loop=loop)

    def _loop_has_call(self, loop):
        instrs = self.program.instructions
        return any(instrs[s].opcode in _CALL_OPS for s in loop.body)

    def _ref_form(self, i, ins):
        """Bounded-congruence address form of a memory instruction
        (mirrors ``MemDepBound._collect``)."""
        if ins.rs1 < 0:
            return _const(ins.imm if ins.imm is not None else 0)
        base = self._resolver.value_at(ins.rs1, i)
        if ins.imm is not None:
            offset = _const(ins.imm)
        elif ins.rs2 >= 0:
            offset = self._resolver.value_at(ins.rs2, i)
        else:
            offset = _const(0)
        return _add(base, offset)

    def _stores_of(self, loop):
        forms = self._store_forms.get(loop.header)
        if forms is None:
            instrs = self.program.instructions
            forms = [(s, self._ref_form(s, instrs[s]))
                     for s in sorted(loop.body) if instrs[s].is_store]
            self._store_forms[loop.header] = forms
        return forms

    # -- periodic(k): the XOR toggle ------------------------------------

    def _toggle_period(self, i, ins, loop):
        """Period of a provable value cycle at ``i``, or None.

        Currently the XOR toggle: ``xor r, imm -> r`` (imm != 0) as the
        only in-body definition of ``r``, executing exactly once per
        iteration, in a loop no call can clobber.  The input of each
        execution is the previous execution's output (the entry value
        on iteration one, invariant per run), so results alternate with
        period 2 within every run.
        """
        if ins.opcode not in _TOGGLE_OPS or ins.imm is None \
                or ins.imm == 0 or ins.rs1 != ins.rd:
            return None
        instrs = self.program.instructions
        reg = ins.rd
        for s in loop.body:
            if s != i and reg in reg_defs(instrs[s]):
                return None
        if self._loop_has_call(loop):
            return None
        if self.forest.loop_of(i) is not loop:
            return None
        dom = self.forest.dom
        if not all(dom.dominates(i, tail)
                   for tail, _ in loop.back_edges):
            return None
        return 2

    # -- derived artifacts ----------------------------------------------

    def cut_indices(self):
        """Static indices whose out-arcs (register, condition-code and
        store-data, never memory) recurrence variant V and dynamic
        graph V cut: every load, plus every non-load producer whose
        result class is stride/invariant-predictable.  The soundness of
        the V chain needs only that the static and dynamic graphs cut
        the *same* set; this method is that single source of truth."""
        cut = set()
        for i, ins in enumerate(self.program.instructions):
            if ins.is_load:
                cut.add(i)
        for site in self.sites:
            if site.cls in VALUE_PREDICTABLE_CLASSES \
                    and site.index not in cut:
                cut.add(site.index)
        return cut

    def class_counts(self):
        """Static site count per class (all result producers)."""
        counts = dict.fromkeys(ALL_CLASSES, 0)
        for site in self.sites:
            counts[site.cls] += 1
        return counts

    def dynamic_class_counts(self, trace):
        """Dynamic *load* count per class for a trace of this program
        (the value predictor observes loads only)."""
        counts = dict.fromkeys(ALL_CLASSES, 0)
        by_index = self.by_index
        is_load = {site.index for site in self.load_sites}
        for s in trace.sidx:
            if s in is_load:
                counts[by_index[s].cls] += 1
        return counts

    def coverage_bound(self, trace):
        """Static upper bound on the stride value predictor's coverage
        of ``trace``: the fraction of dynamic loads whose prediction
        the confidence gate may use, weighting each load by its site's
        class cap."""
        counts = self.dynamic_class_counts(trace)
        total = sum(counts.values())
        if not total:
            return 1.0
        weighted = sum(VALUE_COVERAGE_CAP[cls] * n
                       for cls, n in counts.items())
        return weighted / total

    def aliased_indices(self, table_entries=4096):
        """Load sites whose PCs collide in a direct-mapped table of
        ``table_entries`` entries (word-aligned indexing)."""
        groups = {}
        for site in self.load_sites:
            groups.setdefault((site.pc >> 2) & (table_entries - 1),
                              []).append(site.index)
        aliased = set()
        for members in groups.values():
            if len(members) > 1:
                aliased.update(members)
        return aliased

    def summary_rows(self):
        """Rows (index, line, class, stride/period, loop-header line,
        depth) for the CLI ``--value`` table."""
        rows = []
        instrs = self.program.instructions
        for site in self.sites:
            if site.loop is not None:
                header_ins = instrs[site.loop.header]
                loop_line = header_ins.line if header_ins.line \
                    is not None else 0
                depth = site.loop.depth
            else:
                loop_line = "-"
                depth = 0
            if site.cls == CLASS_PERIODIC:
                detail = "k=%d" % (site.period,)
            elif site.cls in VALUE_PREDICTABLE_CLASSES:
                detail = site.stride if site.stride is not None else "?"
            else:
                detail = "-"
            rows.append([site.index,
                         site.line if site.line is not None else 0,
                         site.cls, detail, loop_line, depth])
        return rows


# ----------------------------------------------------------------------
# Dynamic cross-check: per-PC histograms + the variant-V IPC chain.
# ----------------------------------------------------------------------

class ValueflowCheck:
    """Result of :func:`valueflow_cross_check` for one
    (program, trace) pair."""

    __slots__ = ("violations", "checked_sites", "skipped_aliased",
                 "skipped_short", "coverage_bound", "dynamic_coverage",
                 "steady_accuracy", "loads", "static_floor",
                 "static_bound", "graph_cp", "graph_ipc", "sim_ipc",
                 "widest", "runs_checked")

    def __init__(self):
        self.violations = []
        self.checked_sites = 0
        self.skipped_aliased = 0
        self.skipped_short = 0
        self.coverage_bound = 1.0
        self.dynamic_coverage = 0.0
        self.steady_accuracy = 0.0
        self.loads = 0
        #: largest single-run variant-V recurrence floor (cycles)
        self.static_floor = 0
        #: n / floor, None when no run produced a floor (unbounded)
        self.static_bound = None
        self.graph_cp = 0
        self.graph_ipc = 0.0
        self.sim_ipc = None
        self.widest = 0
        self.runs_checked = 0

    @property
    def ok(self):
        return not self.violations


def valueflow_cross_check(valueflow, trace, result=None, recurrence=None,
                          sim_ipc=None, widest=2048, simulate=True,
                          table_entries=4096):
    """Verify the static value claims against the dynamic machinery.

    Two halves, matching the acceptance inequalities:

    - **per PC** — ``result`` (or a fresh
      ``run_value_predictor(trace, predictor="stride", per_pc=True)``
      pass) must respect every invariant-class load's soundness floor
      ``correct >= count - WARMUP - RELOCK * stride_changes`` with the
      stride-change budget derived from dynamic loop entries, and the
      trace-weighted class caps must dominate the dynamic confident
      coverage;

    - **variant V** — with ``recurrence`` (a
      :class:`~repro.lint.recurrence.RecurrenceAnalysis` built over
      this ``valueflow``), the chain *static variant-V ceiling >=
      graph-V dataflow IPC >= simulated config-I IPC at width
      ``widest``* is asserted: link 1 checks each run's static per-lap
      latency against the anchor's depth growth in graph V, link 2
      checks the floor against graph V's issue-based critical path,
      and link 3 simulates config I (or takes ``sim_ipc``).  Both
      sides cut exactly :meth:`ValueFlowAnalysis.cut_indices`, so a
      violation means a must-edge failed to materialize or the
      scheduler outran its own dependence graph.
    """
    check = ValueflowCheck()
    check.widest = widest
    if result is None:
        from ..vpred.runner import run_value_predictor
        result = run_value_predictor(trace, predictor="stride",
                                     per_pc=True)
    per_pc = result.per_pc
    if per_pc is None:
        raise ValueError("valueflow_cross_check needs per-PC stats: run "
                         "the predictor with per_pc=True")

    from .addrclass import count_loop_entries
    aliased = valueflow.aliased_indices(table_entries)
    site_loops = {site.loop for site in valueflow.load_sites
                  if site.cls in VALUE_PREDICTABLE_CLASSES
                  and site.loop is not None}
    entries = count_loop_entries(trace, site_loops)
    warm_correct = 0
    warm_total = 0
    for site in valueflow.load_sites:
        if site.cls not in VALUE_PREDICTABLE_CLASSES:
            continue
        stat = per_pc.get(site.pc)
        if stat is None:
            continue
        if site.index in aliased:
            check.skipped_aliased += 1
            continue
        if stat.count < MIN_OBSERVATIONS:
            check.skipped_short += 1
            continue
        check.checked_sites += 1
        warm = max(0, stat.count - WARMUP_MISSES)
        warm_correct += min(stat.correct, warm)
        warm_total += warm
        floor = stat.count - WARMUP_MISSES \
            - RELOCK_MISSES * stat.stride_changes
        if stat.correct < floor:
            check.violations.append(
                "line %s: load #%d (%s) broke the stride-value re-lock "
                "bound: %d/%d correct, floor %d with %d stride changes"
                % (site.line, site.index, site.cls, stat.correct,
                   stat.count, floor, stat.stride_changes))
        loop_entries = entries.get(site.loop.header, 1)
        budget = STABILITY_BASE + RELOCK_MISSES * loop_entries
        if stat.stride_changes > budget:
            check.violations.append(
                "line %s: load #%d classified %s but its value stream "
                "changed stride %d times over %d loads across %d loop "
                "entries (budget %d) — statically claimed invariance "
                "does not hold within the loop"
                % (site.line, site.index, site.cls, stat.stride_changes,
                   stat.count, loop_entries, budget))
    if warm_total:
        check.steady_accuracy = warm_correct / warm_total
    check.loads = result.loads
    if result.loads:
        attempted = sum(1 for used in result.attempted.values() if used)
        check.dynamic_coverage = attempted / result.loads
        check.coverage_bound = valueflow.coverage_bound(trace)
        if check.coverage_bound < check.dynamic_coverage:
            check.violations.append(
                "static value-coverage bound %.3f < dynamic stride "
                "predictor coverage %.3f — the load-class cap is "
                "violated or loads are misclassified"
                % (check.coverage_bound, check.dynamic_coverage))

    # ---- variant V: static ceiling >= graph V >= simulated config I
    if recurrence is None:
        return check
    from ..analysis import restructured_depths
    from .ipcbound import _scan_runs

    cut = recurrence.valueflow.cut_indices()
    depths = restructured_depths(trace, collapse=True,
                                 cut_value_producers=cut)
    n = len(trace)
    lat = trace.static.lat
    sidx = trace.sidx
    check.graph_cp = max(depth - lat[sidx[i]]
                         for i, depth in enumerate(depths)) + 1 \
        if depths else 0
    check.graph_ipc = n / check.graph_cp if check.graph_cp else 0.0

    for rec, anchors, _ in _scan_runs(recurrence, trace):
        best = rec.best.get("V")
        if best is None:
            continue
        cycle_lat = best.latency["V"]
        if not cycle_lat:
            continue                # fully contracted: no constraint
        positions = anchors.get(best.anchor, ())
        laps = (len(positions) - 1) // best.dist
        if laps < 1:
            continue
        check.runs_checked += 1
        growth = depths[positions[laps * best.dist]] \
            - depths[positions[0]]
        need = laps * cycle_lat
        if growth < need:
            check.violations.append(
                "loop@%d variant V: static recurrence floor %d cycles "
                "(%d laps x %d) exceeds graph-V depth growth %d at "
                "anchor #%d"
                % (rec.loop.header, need, laps, cycle_lat, growth,
                   best.anchor))
        if need > check.static_floor:
            check.static_floor = need
    if check.static_floor:
        check.static_bound = n / check.static_floor
        if check.static_floor > check.graph_cp:
            check.violations.append(
                "variant V: static cycle floor %d exceeds the graph-V "
                "critical path %d — static IPC ceiling %.3f undercuts "
                "the dataflow limit %.3f"
                % (check.static_floor, check.graph_cp,
                   check.static_bound, check.graph_ipc))

    if sim_ipc is None and simulate:
        from ..core.config import paper_config
        from ..core.simulator import simulate_trace
        sim_ipc = simulate_trace(trace, paper_config("I", widest)).ipc
    if sim_ipc is not None:
        check.sim_ipc = sim_ipc
        if check.graph_ipc * (1 + _REL_TOL) < sim_ipc:
            check.violations.append(
                "variant V: graph-V dataflow limit %.3f IPC < simulated "
                "config-I %.3f IPC at width %d — the scheduler outran "
                "its own dependence graph"
                % (check.graph_ipc, sim_ipc, widest))
        if check.static_bound is not None \
                and check.static_bound * (1 + _REL_TOL) < sim_ipc:
            check.violations.append(
                "variant V: static IPC ceiling %.3f < simulated "
                "config-I %.3f IPC at width %d"
                % (check.static_bound, sim_ipc, widest))
    return check


__all__ = [
    "ALL_CLASSES", "CLASS_AFFINE", "CLASS_CONSTANT", "CLASS_INVARIANT",
    "CLASS_LOAD", "CLASS_PERIODIC", "CLASS_STRAIGHT", "CLASS_STRIDE",
    "CLASS_UNKNOWN", "MIN_OBSERVATIONS", "RELOCK_MISSES",
    "STABILITY_BASE", "VALUE_COVERAGE_CAP", "VALUE_PREDICTABLE_CLASSES",
    "ValueFlowAnalysis", "ValueSite", "ValueflowCheck", "WARMUP_MISSES",
    "class_join", "class_leq", "valueflow_cross_check",
]
