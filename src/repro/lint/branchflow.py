"""Static branch-predictability classification per innermost loop.

Completes the static-twin program of the linter: addresses
(:mod:`repro.lint.addrclass`), memory dependences
(:mod:`repro.lint.memdep`) and result values
(:mod:`repro.lint.valueflow`) all have sound static classifications
cross-checked against their dynamic predictors — this pass does the
same for conditional branches.  Every static conditional branch is
placed in a predictability lattice relative to its innermost reducible
loop:

========== ========================================================
``trip``   loop-exit branch governed by a basic induction variable
           compared against an immediate, with an exactly-recovered
           initial value: the trip count is computable, so the
           branch misbehaves at most once per loop run
``exit``   loop-exit branch (exactly one edge leaves the body)
           without a computable trip count
``invariant`` condition-code cone is loop-invariant: one direction
           per loop run
``periodic`` cone is a self-XOR toggle: direction alternates with
           period 2
``history`` cone is induction-variable-correlated: the direction
           pattern repeats with the iteration pattern
``load``   cone terminates in one or more loads (subclassified by
           the load's ``lint.addrclass`` class): predictability is
           the loaded value's predictability
``straight`` not inside any loop
``unknown`` irreducible region, call-derived condition, or a cone
           the walker cannot bound
========== ========================================================

The lattice is the tree ``trip <= exit <= unknown``, ``invariant <=
history <= unknown``, ``periodic <= history <= unknown``, ``load <=
unknown``, ``straight <= unknown`` — joins are unique least upper
bounds (:func:`branch_class_join`, property-tested against the
brute-force LUB).

Three sound per-workload quantities fall out and are proven against
dynamic evidence by :func:`branchflow_cross_check` (CLI
``repro lint --branch-check``, violations exit 2):

1. **per-PC trip floors** — a ``trip`` branch with trip count ``t``
   exits its loop at most once per ``t`` executions, so the dynamic
   exit-direction count obeys ``exits <= count // t + 1`` whatever
   the predictor does;
2. **class-capped coverage** — :data:`BRANCH_COVERAGE_CAP` bounds the
   fraction of dynamic branches a confidence gate may cover with a
   correct prediction, per class (audited constants, same contract as
   ``VALUE_COVERAGE_CAP``), so the capped static mix dominates the
   measured confident coverage;
3. **cold-start accuracy ceiling** — a static conditional branch
   whose PC is unaliased in the combining predictor's PC-indexed
   bimodal *and* chooser tables is guaranteed mispredicted on its
   first dynamic execution when that outcome is taken (the untouched
   chooser selects the untouched, weakly-not-taken bimodal counter),
   giving ``accuracy <= 1 - floor / conditional`` as a theorem; the
   floor also refines the fetch side of ``lint.ipcbound`` — a config-C
   machine pays at least one fetch-stall cycle per guaranteed
   misprediction, so ``cycles >= floor``.

The load-driven half (Sridhar et al.'s LDBP, PAPERS.md) statically
identifies ``exit`` branches whose compare cone is fed by a single
stride/affine-classified load; :meth:`BranchFlowAnalysis.plan` packages
them as a :class:`BranchPlan` that machine configuration J (config I +
load-driven exit-branch prediction) consumes: when the governing
load's value prediction was confident and correct, the dependent exit
branch resolves at address-generation time and its fetch fence is
waived.  The chain ``static ceiling >= measured combining accuracy >=
config-J early-resolution coverage`` closes the cross-check.
"""

from ..isa.opcodes import Opcode
from ..trace.records import BRC, StaticTable
from .addrclass import (
    CLASS_AFFINE as ADDR_AFFINE,
    CLASS_STRIDE as ADDR_STRIDE,
    AddressClassification,
)
from .cfg import ControlFlowGraph
from .dae import static_signature
from .induction import INV, IV, LoopValues
from .loops import LoopForest
from .memdep import _BOUND_BRANCHES, _Resolver, _is_exact, _join

#: branch predictability classes
CLASS_TRIP = "trip"
CLASS_EXIT = "exit"
CLASS_INVARIANT = "invariant"
CLASS_PERIODIC = "periodic"
CLASS_HISTORY = "history"
CLASS_LOAD = "load"
CLASS_STRAIGHT = "straight"
CLASS_UNKNOWN = "unknown"

ALL_BRANCH_CLASSES = (CLASS_TRIP, CLASS_EXIT, CLASS_INVARIANT,
                      CLASS_PERIODIC, CLASS_HISTORY, CLASS_LOAD,
                      CLASS_STRAIGHT, CLASS_UNKNOWN)

#: classes with a structural handle a history predictor can exploit
BRANCH_PREDICTABLE_CLASSES = frozenset(
    (CLASS_TRIP, CLASS_EXIT, CLASS_INVARIANT, CLASS_PERIODIC,
     CLASS_HISTORY))

#: upward closure of every class in the predictability lattice — a
#: tree rooted at ``unknown``, so pairwise joins are unique LUBs
_UP = {
    CLASS_TRIP: frozenset((CLASS_TRIP, CLASS_EXIT, CLASS_UNKNOWN)),
    CLASS_EXIT: frozenset((CLASS_EXIT, CLASS_UNKNOWN)),
    CLASS_INVARIANT: frozenset((CLASS_INVARIANT, CLASS_HISTORY,
                                CLASS_UNKNOWN)),
    CLASS_PERIODIC: frozenset((CLASS_PERIODIC, CLASS_HISTORY,
                               CLASS_UNKNOWN)),
    CLASS_HISTORY: frozenset((CLASS_HISTORY, CLASS_UNKNOWN)),
    CLASS_LOAD: frozenset((CLASS_LOAD, CLASS_UNKNOWN)),
    CLASS_STRAIGHT: frozenset((CLASS_STRAIGHT, CLASS_UNKNOWN)),
    CLASS_UNKNOWN: frozenset((CLASS_UNKNOWN,)),
}

_RANK = {cls: len(_UP) - len(up) for cls, up in _UP.items()}


def branch_class_leq(a, b):
    """True when class ``a`` is at least as predictable as ``b``."""
    return b in _UP[a]


def branch_class_join(a, b):
    """Least upper bound of two branch classes."""
    return min(_UP[a] & _UP[b], key=lambda cls: (_RANK[cls], cls))


#: Per-class upper bound on the fraction of dynamic branches whose
#: prediction a confidence gate may both open for *and* get right.
#: Sub-1.0 caps are audited empirical contracts, not theorems: across
#: all seven workloads at scales 0.03/0.05 the ``load`` class's
#: confident-correct fraction peaks at 0.58 (go) and ``unknown`` at
#: 0.39 (vortex); the caps leave a 1.5-1.9x margin, the same contract
#: style as ``VALUE_COVERAGE_CAP``.  Structural classes keep the
#: trivial 1.0 bound: a trip/exit/invariant branch can legitimately be
#: near-perfectly covered (compress's invariant sites hit 0.99).
BRANCH_COVERAGE_CAP = {
    CLASS_TRIP: 1.0,
    CLASS_EXIT: 1.0,
    CLASS_INVARIANT: 1.0,
    CLASS_PERIODIC: 1.0,
    CLASS_HISTORY: 1.0,
    CLASS_LOAD: 0.85,
    CLASS_STRAIGHT: 1.0,
    CLASS_UNKNOWN: 0.75,
}

#: default predictor geometry the floor reasons over: the combining
#: predictor's PC-indexed bimodal and chooser tables are both 2^13
#: entries with the same ``(pc >> 2) & mask`` index function
_PC_TABLE_ENTRIES = 8192

#: backward-cone walk budget (distinct (register, site) states)
_CONE_BUDGET = 64

_REL_TOL = 1e-9

#: exit-taken loop-exit branches: the *continue* condition is the
#: negation of the branch condition (``bge exit`` continues while
#: ``iv <= C - 1``); mirrors memdep's ``_BOUND_BRANCHES`` for the
#: fall-through-exit (branch-taken-continues) orientation
_EXIT_BOUND_BRANCHES = {
    Opcode.BGE: ("hi", -1),    # exit when iv >= C -> continue iv <= C-1
    Opcode.BG: ("hi", 0),      # exit when iv > C  -> continue iv <= C
    Opcode.BLE: ("lo", 1),     # exit when iv <= C -> continue iv >= C+1
    Opcode.BL: ("lo", 0),      # exit when iv < C  -> continue iv >= C
}

_XOR_OPS = frozenset((Opcode.XOR, Opcode.XORCC))
_CALL_OPS = frozenset((Opcode.CALL, Opcode.JMPL))


class BranchSite:
    """Classification of one static conditional branch."""

    __slots__ = ("index", "line", "pc", "cls", "trip", "period", "loop",
                 "exit_taken", "load_index", "load_cls", "note")

    def __init__(self, index, line, pc, cls, trip=None, period=None,
                 loop=None, exit_taken=None, load_index=None,
                 load_cls=None, note=""):
        self.index = index
        self.line = line
        self.pc = pc
        self.cls = cls
        self.trip = trip            # computed trip count (trip class)
        self.period = period        # toggle period (periodic class)
        self.loop = loop
        #: for loop-exit branches: True when the *taken* edge leaves
        self.exit_taken = exit_taken
        #: unique governing load, when the cc cone is load-fed
        self.load_index = load_index
        self.load_cls = load_cls    # that load's addrclass class
        self.note = note

    def __repr__(self):
        return "<BranchSite #%d %s trip=%r load=%r>" % (
            self.index, self.cls, self.trip, self.load_index)


class BranchFlowAnalysis:
    """Per-program predictability classification of every conditional
    branch, relative to its innermost reducible loop."""

    def __init__(self, program, cfg=None, forest=None, values=None,
                 addr_classes=None):
        self.program = program
        self.cfg = cfg if cfg is not None else ControlFlowGraph(program)
        self.forest = forest if forest is not None \
            else LoopForest(self.cfg)
        if addr_classes is None:
            addr_classes = AddressClassification(
                program, cfg=self.cfg, forest=self.forest)
        self.addr_classes = addr_classes
        self.values = values if values is not None \
            else addr_classes.values
        self.table = StaticTable.from_program(program)
        self._resolver = _Resolver(program, self.cfg, self.forest,
                                   self.values)
        self.sites = []
        self.by_index = {}
        self._classify()

    def _classify(self):
        for i, ins in enumerate(self.program.instructions):
            if not ins.is_cond_branch:
                continue
            site = self._classify_branch(i, ins)
            self.sites.append(site)
            self.by_index[i] = site

    def _classify_branch(self, i, ins):
        line = ins.line
        pc = self.program.address_of_index(i)
        loop = self.forest.loop_of(i)
        if loop is None:
            return BranchSite(i, line, pc, CLASS_STRAIGHT)
        if self.forest.in_irreducible_region(i):
            return BranchSite(i, line, pc, CLASS_UNKNOWN, loop=loop,
                              note="irreducible region")
        target_in = ins.target in loop.body
        fall = i + 1
        fall_in = fall < self.cfg.n and fall in loop.body
        exit_taken = not target_in
        is_exit = exit_taken != (not fall_in)
        kind, load_index, load_cls, period, note = self._cone(i, loop)
        if is_exit:
            trip = self._trip_count(i, ins, loop, exit_taken)
            if trip is not None:
                return BranchSite(i, line, pc, CLASS_TRIP, trip=trip,
                                  loop=loop, exit_taken=exit_taken,
                                  note="iv-governed, bound recovered")
            return BranchSite(i, line, pc, CLASS_EXIT, loop=loop,
                              exit_taken=exit_taken,
                              load_index=load_index, load_cls=load_cls,
                              note=note or ("%s cone" % kind))
        return BranchSite(i, line, pc, kind, period=period, loop=loop,
                          load_index=load_index, load_cls=load_cls,
                          note=note)

    # -- trip-count recovery -------------------------------------------

    def _trip_count(self, branch, ins, loop, exit_taken):
        """Exact executions-per-run lower bound for an IV-governed
        loop-exit branch, or None.

        The governing ``subcc iv, C`` immediately precedes the branch;
        the IV steps by ``s`` exactly once per iteration
        (``find_basic_ivs`` guarantees the update dominates every
        back-edge tail) and enters every run with the same exact
        constant value ``i0``.  The continue bound ``H`` comes from the
        branch opcode (memdep's table for branch-taken-continues,
        :data:`_EXIT_BOUND_BRANCHES` for branch-taken-exits).  The
        compare may sit before or after the update within the
        iteration, so the branch executes ``(H - i0) // s + 1`` or one
        more time per full run — the returned ``t`` is the sound lower
        bound.  Kernel index values are small integers (same 32-bit
        non-wrapping assumption memdep documents); the dynamic floor
        check would catch a wrap loudly.
        """
        bounds = _EXIT_BOUND_BRANCHES if exit_taken \
            else _BOUND_BRANCHES
        side = bounds.get(ins.opcode)
        if side is None:
            return None
        if not loop.back_edges:
            return None
        dom = self.forest.dom
        # Executes exactly once per iteration: it dominates every
        # back-edge tail and has no inner cycle around it (innermost).
        if not all(dom.dominates(branch, tail)
                   for tail, _ in loop.back_edges):
            return None
        cc_index = self._governing_cc(branch, loop)
        if cc_index is None:
            return None
        cc = self.program.instructions[cc_index]
        if cc.opcode is not Opcode.SUBCC:
            return None
        iv = self.values.ivs_of(loop).get(cc.rs1)
        if iv is None or not iv.step:
            return None
        limit = self._compare_limit(cc, cc_index)
        if limit is None:
            return None
        which, delta = side
        if which == "hi" and iv.step < 0:
            return None
        if which == "lo" and iv.step > 0:
            return None
        bound = limit + delta
        i0 = self._entry_value(cc.rs1, loop, iv)
        if i0 is None:
            return None
        q = (bound - i0) // iv.step
        if q < 1:
            return None
        return q + 1

    def _compare_limit(self, cc, cc_index):
        """Exact constant the compare tests the IV against: either an
        immediate or a register the memdep resolver proves holds a
        single program constant at the compare site (which also makes
        it loop-invariant — an in-loop redefinition to a different
        value would break exactness)."""
        if cc.imm is not None:
            return cc.imm
        if cc.rs2 < 0:
            return None
        form = self._resolver.value_at(cc.rs2, cc_index)
        if not _is_exact(form):
            return None
        anchor, _, lo, hi = form
        if lo != anchor or hi != anchor:
            return None
        return anchor

    def _governing_cc(self, branch, loop):
        """Index of the straight-line cc-writer feeding ``branch``."""
        instrs = self.program.instructions
        j = branch - 1
        while j >= 0 and j in loop.body:
            ins = instrs[j]
            if ins.is_control:
                return None
            if ins.writes_cc:
                return j
            j -= 1
        return None

    def _entry_value(self, reg, loop, iv):
        """Exact constant value ``reg`` holds on every loop entry, or
        None: the join of every non-IV definition reaching the loop
        *header* must be a single exact program constant.  (Reading at
        the compare site would miss the seed whenever the IV update
        precedes the compare within the iteration — the update kills
        the seed definition on every path to the compare.)"""
        resolver = self._resolver
        state = resolver.reach[loop.header]
        if state is None:
            return None
        writers = state[reg]
        if writers & (1 << self.cfg.n):
            return None             # live-in at the entry point
        form = None
        seeded = False
        mask = writers
        while mask:
            low = mask & -mask
            w = low.bit_length() - 1
            mask ^= low
            if w in iv.sites:
                continue
            if w in loop.body:
                return None         # a second in-body writer
            f = resolver._def_value(w, set())
            if f is None:
                return None
            form = f if not seeded else _join(form, f)
            seeded = True
        if not seeded or not _is_exact(form):
            return None
        anchor, _, lo, hi = form
        if lo != anchor or hi != anchor:
            return None
        return anchor

    # -- condition-code cone classification ----------------------------

    def _cone(self, branch, loop):
        """Classify the backward cone of the branch's condition codes.

        Returns ``(kind, load_index, load_cls, period, note)``.  The
        walk follows reaching definitions inside the loop body;
        leaves are loop-invariant values (outside definitions,
        constants, entry live-ins), basic-IV self-updates, self-XOR
        toggles, and loads.  Calls or an exhausted budget force
        ``unknown`` — unresolved means unpredictable, never the
        reverse.
        """
        instrs = self.program.instructions
        cc_index = self._governing_cc(branch, loop)
        if cc_index is None:
            return (CLASS_UNKNOWN, None, None, None,
                    "no in-loop cc writer")
        cc = instrs[cc_index]
        stack = []
        if cc.rs1 >= 0:
            stack.append((cc.rs1, cc_index))
        if cc.imm is None and cc.rs2 >= 0:
            stack.append((cc.rs2, cc_index))
        reach = self._resolver.reach
        entry_bit = 1 << self.cfg.n
        ivs = self.values.ivs_of(loop)
        kinds = set()
        loads = set()
        visited = set()
        while stack:
            reg, site = stack.pop()
            if (reg, site) in visited:
                continue
            visited.add((reg, site))
            if len(visited) > _CONE_BUDGET:
                return (CLASS_UNKNOWN, None, None, None,
                        "cone budget exhausted")
            if reg == 0:
                continue            # %g0 is hardwired zero
            state = reach[site]
            if state is None:
                return (CLASS_UNKNOWN, None, None, None,
                        "unreachable cone site")
            writers = state[reg]
            if writers & entry_bit:
                kinds.add(INV)
            mask = writers & ~entry_bit
            while mask:
                low = mask & -mask
                w = low.bit_length() - 1
                mask ^= low
                if w not in loop.body:
                    kinds.add(INV)
                    continue
                ins = instrs[w]
                iv = ivs.get(reg)
                if iv is not None and w in iv.sites:
                    kinds.add(IV)
                    continue
                if ins.is_load:
                    loads.add(w)
                    continue
                if ins.opcode in _CALL_OPS:
                    return (CLASS_UNKNOWN, None, None, None,
                            "call-derived condition")
                if ins.opcode in _XOR_OPS and ins.rd == reg \
                        and ins.rs1 == reg and ins.imm is not None:
                    kinds.add(CLASS_PERIODIC)
                    continue
                if ins.opcode is Opcode.SETHI:
                    kinds.add(INV)
                    continue
                pushed = False
                if ins.rs1 >= 0:
                    stack.append((ins.rs1, w))
                    pushed = True
                if ins.imm is None and ins.rs2 >= 0:
                    stack.append((ins.rs2, w))
                    pushed = True
                if not pushed:
                    kinds.add(INV)  # pure-immediate definition
        if loads:
            load_index = load_cls = None
            if len(loads) == 1:
                load_index = next(iter(loads))
                load_site = self.addr_classes.by_index.get(load_index)
                load_cls = load_site.cls if load_site is not None \
                    else None
            note = "fed by load #%s (%s)" % (
                load_index if load_index is not None
                else "%d sites" % len(loads), load_cls or "mixed")
            return (CLASS_LOAD, load_index, load_cls, None, note)
        if CLASS_PERIODIC in kinds and IV not in kinds:
            return (CLASS_PERIODIC, None, None, 2, "self-xor toggle")
        if not kinds or kinds <= {INV}:
            return (CLASS_INVARIANT, None, None, None, "")
        return (CLASS_HISTORY, None, None, None, "iv-correlated")

    # -- aggregate views -----------------------------------------------

    def class_counts(self):
        """Static site count per class."""
        counts = dict.fromkeys(ALL_BRANCH_CLASSES, 0)
        for site in self.sites:
            counts[site.cls] += 1
        return counts

    def dynamic_class_counts(self, trace):
        """Dynamic conditional-branch count per class for a trace."""
        counts = dict.fromkeys(ALL_BRANCH_CLASSES, 0)
        by_index = self.by_index
        for s in trace.sidx:
            site = by_index.get(s)
            if site is not None:
                counts[site.cls] += 1
        return counts

    def coverage_bound(self, trace):
        """Static upper bound on the confident-correct coverage of the
        combining predictor over ``trace``: each dynamic branch weighted
        by its class's :data:`BRANCH_COVERAGE_CAP`."""
        counts = self.dynamic_class_counts(trace)
        total = sum(counts.values())
        if not total:
            return 1.0
        capped = sum(BRANCH_COVERAGE_CAP[cls] * count
                     for cls, count in counts.items())
        return capped / total

    def aliased_indices(self, table_entries=_PC_TABLE_ENTRIES):
        """Branch sites whose PCs collide in a direct-mapped PC-indexed
        table of ``table_entries`` entries (word-aligned indexing)."""
        groups = {}
        for site in self.sites:
            slot = (site.pc >> 2) & (table_entries - 1)
            groups.setdefault(slot, []).append(site.index)
        aliased = set()
        for members in groups.values():
            if len(members) > 1:
                aliased.update(members)
        return aliased

    def misprediction_floor(self, trace,
                            table_entries=_PC_TABLE_ENTRIES):
        """Guaranteed cold-start mispredictions of the default combining
        predictor on ``trace``, with the conditional-branch count.

        Counts static conditional branches whose PC is unaliased in
        *both* PC-indexed tables (bimodal and chooser share the
        ``(pc >> 2) & 8191`` index) and whose first dynamic outcome is
        taken: the untouched chooser counter (1, below threshold 2)
        selects bimodal, whose untouched counter (1, weakly not-taken)
        predicts not-taken — a guaranteed misprediction whatever other
        branches did to the gshare side.  The aliasing restriction is
        what keeps this sound: a gshare-indexed floor would not be,
        since ``(pc ^ history)`` collisions are outcome-dependent.
        """
        aliased = self.aliased_indices(table_entries)
        cls = trace.static.cls
        taken = trace.taken
        seen = set()
        floor = 0
        conditional = 0
        by_index = self.by_index
        for pos, s in enumerate(trace.sidx):
            if cls[s] != BRC:
                continue
            conditional += 1
            if s in seen:
                continue
            seen.add(s)
            if s in by_index and s not in aliased and taken[pos]:
                floor += 1
        return floor, conditional

    def accuracy_ceiling(self, trace,
                         table_entries=_PC_TABLE_ENTRIES):
        """Static ceiling on the combining predictor's accuracy."""
        floor, conditional = self.misprediction_floor(trace,
                                                      table_entries)
        if not conditional:
            return 1.0
        return 1.0 - floor / conditional

    def summary_rows(self):
        """Rows (index, line, class, trip, period, exit edge, load,
        note) for the CLI ``--branch`` table."""
        rows = []
        for site in self.sites:
            exit_edge = "-"
            if site.exit_taken is not None:
                exit_edge = "taken" if site.exit_taken else "fall"
            rows.append([
                site.index,
                site.line if site.line is not None else 0,
                site.cls,
                site.trip if site.trip is not None else "-",
                site.period if site.period is not None else "-",
                exit_edge,
                site.load_cls if site.load_cls is not None else "-",
                site.note or "-",
            ])
        return rows

    # -- the dynamic-side contract (config J) --------------------------

    def plan(self):
        """Build the :class:`BranchPlan` configuration J consumes: every
        ``exit`` branch whose compare cone is fed by exactly one
        stride/affine-classified load."""
        resolves = {}
        for site in self.sites:
            if site.cls != CLASS_EXIT or site.load_index is None:
                continue
            if site.load_cls not in (ADDR_STRIDE, ADDR_AFFINE):
                continue
            resolves[site.index] = site.load_index
        return BranchPlan(static_signature(self.table),
                          dict(sorted(resolves.items())))


class BranchPlan:
    """The static load-driven exit-branch contract handed to the
    scheduler.

    ``resolves`` maps exit-branch static index -> governing-load static
    index.  Duck-typed by :class:`repro.core.scheduler.WindowScheduler`
    and :class:`repro.lint.sanitize.SchedulerSanitizer`.
    """

    __slots__ = ("signature", "resolves")

    def __init__(self, signature, resolves):
        for branch, load in resolves.items():
            if branch == load:
                raise ValueError(
                    "branch plan maps branch #%d to itself" % (branch,))
        self.signature = signature
        self.resolves = resolves

    def validate(self, static):
        """Raise ValueError when ``static`` (a StaticTable) is not the
        program this plan was derived from."""
        if static_signature(static) != self.signature:
            raise ValueError(
                "branch plan does not match the trace's static program; "
                "rebuild the plan from the same workload and scale")

    def __repr__(self):
        return "<BranchPlan %d load-driven exit branches>" % (
            len(self.resolves),)


# ----------------------------------------------------------------------
# Dynamic cross-check
# ----------------------------------------------------------------------


class BranchflowCheck:
    """Outcome of :func:`branchflow_cross_check`."""

    __slots__ = ("violations", "conditional", "sites", "floors_checked",
                 "coverage_bound", "confident_coverage", "floor",
                 "ceiling", "accuracy", "sim_cycles", "refined_ipc",
                 "early_coverage", "plan_branches", "sim")

    def __init__(self):
        self.violations = []
        self.conditional = 0
        self.sites = 0
        self.floors_checked = 0
        self.coverage_bound = 1.0
        self.confident_coverage = 0.0
        self.floor = 0              # guaranteed mispredictions
        self.ceiling = 1.0          # static accuracy ceiling
        self.accuracy = 0.0         # measured combining accuracy
        self.sim_cycles = None      # config-C cycles (fetch side)
        self.refined_ipc = None     # fetch-refined IPC ceiling
        self.early_coverage = None  # config-J early resolves / branch
        self.plan_branches = 0
        self.sim = {}               # letter -> SimResult

    @property
    def ok(self):
        return not self.violations


def branchflow_cross_check(branchflow, trace, result=None,
                           sim_results=None, widest=2048, simulate=True,
                           table_entries=_PC_TABLE_ENTRIES):
    """Prove the static branch claims against dynamic evidence.

    ``result`` is a :class:`repro.bpred.runner.BranchRunResult` with
    per-PC histograms (computed here when absent).  ``sim_results`` may
    supply precomputed ``{"C": .., "I": .., "J": ..}`` simulations at
    the widest machine; otherwise they are simulated here unless
    ``simulate`` is False, which skips the fetch-side and config-J
    links.

    Checks, in soundness-chain order:

    1. per-PC trip floors — ``exits <= count // trip + 1`` for every
       ``trip`` site (over raw outcomes, so truncated traces and early
       exits through other branches stay sound);
    2. class-capped static coverage >= measured confident-correct
       coverage;
    3. static accuracy ceiling >= measured combining accuracy
       (a theorem given the cold-start floor);
    4. config-C cycles >= the guaranteed misprediction floor (the
       ``lint.ipcbound`` fetch-side refinement);
    5. config J never takes more cycles than config I (the plan only
       waives fences), and its early-resolution coverage stays below
       the measured accuracy, closing the chain
       ``ceiling >= accuracy >= early coverage``.
    """
    from ..bpred.runner import run_branch_predictor

    check = BranchflowCheck()
    check.sites = len(branchflow.sites)
    if result is None or result.per_pc is None:
        result = run_branch_predictor(trace, per_pc=True)
    check.conditional = result.conditional
    if not result.conditional:
        return check

    # ---- link 1: per-PC trip floors
    per_pc = result.per_pc
    for site in branchflow.sites:
        if site.cls != CLASS_TRIP:
            continue
        stat = per_pc.get(site.pc)
        if stat is None:
            continue
        exits = stat.taken if site.exit_taken \
            else stat.count - stat.taken
        allowed = stat.count // site.trip + 1
        check.floors_checked += 1
        if exits > allowed:
            check.violations.append(
                "trip branch #%d (line %s): %d exit outcomes over %d "
                "executions exceeds the trip-count floor %d "
                "(trip=%d) — the recovered bound is wrong"
                % (site.index, site.line, exits, stat.count, allowed,
                   site.trip))

    # ---- link 2: class-capped coverage >= confident coverage
    check.coverage_bound = branchflow.coverage_bound(trace)
    check.confident_coverage = \
        result.confident_correct / result.conditional
    if check.coverage_bound * (1 + _REL_TOL) < check.confident_coverage:
        check.violations.append(
            "class-capped static coverage %.4f < measured "
            "confident-correct coverage %.4f — a BRANCH_COVERAGE_CAP "
            "entry is too tight"
            % (check.coverage_bound, check.confident_coverage))

    # ---- link 3: static ceiling >= measured accuracy
    floor, conditional = branchflow.misprediction_floor(trace,
                                                        table_entries)
    check.floor = floor
    if conditional != result.conditional:
        check.violations.append(
            "trace has %d conditional branches but the predictor run "
            "saw %d — mismatched trace/result pair"
            % (conditional, result.conditional))
        return check
    check.ceiling = 1.0 - floor / conditional
    check.accuracy = result.accuracy
    if check.ceiling * (1 + _REL_TOL) < check.accuracy:
        check.violations.append(
            "static accuracy ceiling %.4f < measured combining "
            "accuracy %.4f — a guaranteed misprediction was predicted"
            % (check.ceiling, check.accuracy))

    # ---- links 4 and 5: simulated fetch floor and config J
    plan = branchflow.plan()
    check.plan_branches = len(plan.resolves)
    if sim_results is None and simulate:
        from ..core.config import paper_config
        from ..core.simulator import simulate_trace
        sim_results = {
            "C": simulate_trace(trace, paper_config("C", widest),
                                branch_result=result),
            "I": simulate_trace(trace, paper_config("I", widest),
                                branch_result=result),
            "J": simulate_trace(trace, paper_config("J", widest),
                                branch_result=result,
                                branch_plan=plan),
        }
    if sim_results:
        check.sim = dict(sim_results)
        from .ipcbound import fetch_refined_ipc
        sim_c = sim_results.get("C")
        if sim_c is not None:
            check.sim_cycles = sim_c.cycles
            check.refined_ipc = fetch_refined_ipc(
                len(trace), sim_c.cycles, floor)
            if sim_c.cycles < floor:
                check.violations.append(
                    "config C finished in %d cycles, below the "
                    "guaranteed-misprediction fetch floor %d"
                    % (sim_c.cycles, floor))
        sim_i = sim_results.get("I")
        sim_j = sim_results.get("J")
        if sim_i is not None and sim_j is not None \
                and sim_j.cycles > sim_i.cycles:
            check.violations.append(
                "config J took %d cycles vs config I's %d — waiving "
                "fetch fences must never slow the machine down"
                % (sim_j.cycles, sim_i.cycles))
        if sim_j is not None and sim_j.branch_spec is not None:
            bspec = sim_j.branch_spec
            check.early_coverage = \
                bspec.early_resolved / result.conditional
            if check.accuracy * (1 + _REL_TOL) < check.early_coverage:
                check.violations.append(
                    "config-J early-resolution coverage %.4f exceeds "
                    "the measured combining accuracy %.4f — the "
                    "soundness chain ceiling >= accuracy >= coverage "
                    "is broken"
                    % (check.early_coverage, check.accuracy))
    return check


__all__ = ["ALL_BRANCH_CLASSES", "BRANCH_COVERAGE_CAP",
           "BRANCH_PREDICTABLE_CLASSES", "BranchFlowAnalysis",
           "BranchPlan", "BranchSite", "BranchflowCheck",
           "CLASS_EXIT", "CLASS_HISTORY", "CLASS_INVARIANT",
           "CLASS_LOAD", "CLASS_PERIODIC", "CLASS_STRAIGHT",
           "CLASS_TRIP", "CLASS_UNKNOWN", "branch_class_join",
           "branch_class_leq", "branchflow_cross_check"]
