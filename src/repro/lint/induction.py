"""Induction-variable and loop-relative value-form analysis.

Feeds the per-load address classification (:mod:`repro.lint.addrclass`).
Two layers:

- :func:`strict_reaching_writers` — per instruction, per register, the
  bitmask of instructions that may be the architectural last writer
  along the *strict* CFG (the paths the emulator actually takes).  A
  ``call``'s fallthrough edge makes the call site the writer of every
  register (the callee is opaque), and bit ``n`` marks "the value from
  before the entry point" so initial values are distinguishable from
  in-program writers.

- :class:`LoopValues` — a small abstract interpreter that renders the
  value a register holds at a site as a *form relative to a loop*:

  ========== =====================================================
  ``inv``    loop-invariant during any single run of the loop
  ``iv``     a basic induction variable (``r = r ± imm`` once per
             iteration); payload is the per-iteration step
  ``affine`` an affine function of a basic IV — constant stride per
             iteration; payload is the stride (None = constant but
             statically unknown, e.g. scaled by an invariant register)
  ``load``   derived from a load result produced inside the loop
             (the pointer-chase signal: address depends on memory)
  ``unknown`` anything else (hash mixing, variable-step updates,
             multiple reaching definitions, call results)
  ========== =====================================================

  Only operations that preserve affinity propagate ``iv``/``affine``:
  add/sub with a constant or invariant, shifts left by a constant or
  invariant amount, multiplies by an invariant.  Logical masking,
  right shifts and divides demote to ``unknown`` — exactly why a hash
  probe (compress) classifies as irregular while a linked-list walk
  (li) classifies as pointer chasing.
"""

from ..isa.opcodes import Opcode
from .dataflow import reg_defs

#: value-form kind tags
INV = "inv"
IV = "iv"
AFFINE = "affine"
LOAD = "load"
UNKNOWN = "unknown"

_NUM_REGS = 32

#: opcodes a basic induction variable may be updated by
_IV_OPS = frozenset((Opcode.ADD, Opcode.SUB, Opcode.ADDCC, Opcode.SUBCC))

#: add-like opcodes (affinity-preserving sum)
_ADD_OPS = frozenset((Opcode.ADD, Opcode.ADDCC))
_SUB_OPS = frozenset((Opcode.SUB, Opcode.SUBCC))
_MUL_OPS = frozenset((Opcode.UMUL, Opcode.SMUL))


def strict_reaching_writers(program, cfg):
    """Per-instruction, per-register may-last-writer sets (strict CFG).

    Returns a list ``reach`` where ``reach[i]`` is a 32-slot list of
    bitmasks over instruction indices; bit ``n`` (= ``cfg.n``) is the
    pseudo-writer "initial value at the entry point".  ``None`` for
    instructions unreachable along strict paths.
    """
    instrs = program.instructions
    n = cfg.n
    reach = [None] * n
    if not n:
        return reach
    entry_bit = 1 << n
    entry = cfg.entry
    reach[entry] = [entry_bit] * _NUM_REGS
    work = [entry]
    while work:
        i = work.pop()
        ins = instrs[i]
        state = reach[i]
        out = list(state)
        for r in reg_defs(ins):
            out[r] = 1 << i
        if ins.opcode is Opcode.CALL:
            # The callee may write anything before control returns.
            clobber = [1 << i] * _NUM_REGS
        else:
            clobber = None
        for s in cfg.successors(i):
            if s >= n:
                continue
            edge_out = clobber if (clobber is not None and s == i + 1) \
                else out
            target = reach[s]
            if target is None:
                reach[s] = list(edge_out)
                work.append(s)
                continue
            changed = False
            for r in range(_NUM_REGS):
                merged = target[r] | edge_out[r]
                if merged != target[r]:
                    target[r] = merged
                    changed = True
            if changed:
                work.append(s)
    return reach


class BasicIV:
    """One basic induction variable of one loop."""

    __slots__ = ("reg", "step", "sites")

    def __init__(self, reg, step, sites):
        self.reg = reg
        self.step = step        # per-iteration step, None when unknown
        self.sites = frozenset(sites)


def find_basic_ivs(program, cfg, forest, loop, domtree=None):
    """Basic IVs of ``loop``: registers whose only in-body definitions
    are self-updates ``r = r ± imm``.

    The step is known only when there is exactly one update site, it
    executes exactly once per iteration (it dominates every back-edge
    tail and is not nested in an inner loop), so the address stream of
    any load addressed off the IV has a constant per-iteration stride.
    Variable-step IVs (conditional or multi-site updates) are *not*
    returned — their strides change with the path taken, which is
    precisely what the two-delta table cannot lock onto.
    """
    instrs = program.instructions
    dom = domtree if domtree is not None else forest.dom
    defs_in_body = {}
    for site in loop.body:
        ins = instrs[site]
        if ins.opcode is Opcode.CALL:
            # Callee clobbers everything: no IV survives a call.
            return {}
        for r in reg_defs(ins):
            defs_in_body.setdefault(r, []).append(site)
    ivs = {}
    for reg, sites in defs_in_body.items():
        if len(sites) != 1:
            continue
        site = sites[0]
        ins = instrs[site]
        if ins.opcode not in _IV_OPS or ins.imm is None \
                or ins.rs1 != reg or ins.rd != reg:
            continue
        if forest.loop_of(site) is not loop:
            continue                    # updates many times per iteration
        if not all(dom.dominates(site, tail)
                   for tail, _ in loop.back_edges):
            continue                    # conditionally updated
        step = ins.imm if ins.opcode in _ADD_OPS else -ins.imm
        ivs[reg] = BasicIV(reg, step, sites)
    return ivs


class LoopValues:
    """Loop-relative symbolic evaluation of register values."""

    def __init__(self, program, cfg, forest, reach=None):
        self.program = program
        self.cfg = cfg
        self.forest = forest
        self.reach = reach if reach is not None \
            else strict_reaching_writers(program, cfg)
        self._ivs = {}          # loop header -> {reg: BasicIV}
        self._cache = {}

    def ivs_of(self, loop):
        ivs = self._ivs.get(loop.header)
        if ivs is None:
            ivs = find_basic_ivs(self.program, self.cfg, self.forest,
                                 loop)
            self._ivs[loop.header] = ivs
        return ivs

    # ------------------------------------------------------------------

    def form(self, reg, site, loop, _visiting=None):
        """Form of the value ``reg`` holds when ``site`` executes,
        relative to ``loop``.  Returns ``(kind, stride)``; stride is
        meaningful for ``iv``/``affine`` and may be None (constant but
        statically unknown)."""
        key = (reg, site, loop.header)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if _visiting is None:
            _visiting = set()
        if key in _visiting:
            return (UNKNOWN, None)
        _visiting.add(key)
        result = self._form_uncached(reg, site, loop, _visiting)
        _visiting.discard(key)
        self._cache[key] = result
        return result

    def _form_uncached(self, reg, site, loop, visiting):
        state = self.reach[site]
        if state is None:
            return (UNKNOWN, None)
        writers = state[reg]
        in_body = []
        mask = writers & ~(1 << self.cfg.n)
        while mask:
            low = mask & -mask
            w = low.bit_length() - 1
            mask ^= low
            if w in loop.body:
                in_body.append(w)
        if not in_body:
            return (INV, 0)
        ivs = self.ivs_of(loop)
        iv = ivs.get(reg)
        if iv is not None and all(w in iv.sites for w in in_body):
            return (IV, iv.step)
        if len(in_body) > 1:
            return (UNKNOWN, None)
        return self._def_form(in_body[0], loop, visiting)

    def _def_form(self, d, loop, visiting):
        """Form of the value instruction ``d`` writes."""
        ins = self.program.instructions[d]
        op = ins.opcode
        if ins.is_load:
            return (LOAD, None)
        if op is Opcode.CALL or op is Opcode.JMPL:
            return (UNKNOWN, None)
        if op is Opcode.SETHI:
            return (INV, 0)
        if op is Opcode.MOV:
            if ins.imm is not None:
                return (INV, 0)
            return self.form(ins.rs2, d, loop, visiting)
        if op in _ADD_OPS or op in _SUB_OPS:
            negate = op in _SUB_OPS
            left = self.form(ins.rs1, d, loop, visiting)
            if ins.imm is not None:
                right = (INV, 0)
            else:
                right = self.form(ins.rs2, d, loop, visiting)
            return combine_sum(left, right, negate)
        if op is Opcode.SLL:
            base = self.form(ins.rs1, d, loop, visiting)
            if ins.imm is not None:
                return scale_form(base, 1 << ins.imm)
            amount = self.form(ins.rs2, d, loop, visiting)
            if amount[0] == INV:
                return scale_form(base, None)
            return (UNKNOWN, None)
        if op in _MUL_OPS:
            left = self.form(ins.rs1, d, loop, visiting)
            if ins.imm is not None:
                return scale_form(left, ins.imm)
            right = self.form(ins.rs2, d, loop, visiting)
            if right[0] == INV:
                return scale_form(left, None)
            if left[0] == INV:
                return scale_form(right, None)
            return (UNKNOWN, None)
        # Logical masking, right shifts, divides: affinity is destroyed
        # (this is what demotes hash probing to "irregular").  Still
        # invariant when every operand is invariant.
        operands = []
        if ins.rs1 >= 0:
            operands.append(self.form(ins.rs1, d, loop, visiting))
        if ins.imm is None and ins.rs2 >= 0:
            operands.append(self.form(ins.rs2, d, loop, visiting))
        if operands and all(f[0] == INV for f in operands):
            return (INV, 0)
        return (UNKNOWN, None)


def combine_sum(left, right, negate):
    """Form of ``left + right`` (or ``left - right``)."""
    lk, ls = left
    rk, rs = right
    if LOAD in (lk, rk):
        # Address material derived from a load result: the chase
        # signal survives further (affine) address arithmetic.
        return (LOAD, None)
    if UNKNOWN in (lk, rk):
        return (UNKNOWN, None)
    if lk == INV and rk == INV:
        return (INV, 0)
    # At least one side is iv/affine: stride adds (or subtracts).
    if ls is None or rs is None:
        return (AFFINE, None)
    stride = ls + (-rs if negate else rs)
    return (AFFINE, stride)


def scale_form(form, factor):
    """Form of ``value * factor`` (factor None = invariant unknown)."""
    kind, stride = form
    if kind == INV:
        return (INV, 0)
    if kind in (IV, AFFINE):
        if stride is None or factor is None:
            return (AFFINE, None)
        return (AFFINE, stride * factor)
    if kind == LOAD:
        return (LOAD, None)
    return (UNKNOWN, None)


__all__ = ["AFFINE", "BasicIV", "INV", "IV", "LOAD", "LoopValues",
           "UNKNOWN", "combine_sum", "find_basic_ivs", "scale_form",
           "strict_reaching_writers"]
