"""Binary save/load for dynamic traces.

Format (version 1), all little-endian, every block length-prefixed with
a u32 byte count:

- 8-byte magic ``b"REPROTR1"``;
- a JSON header block with trace name, version, and column counts;
- the static table: the numeric columns (``cls``, ``lat``, ``dest``,
  ``src1``, ``src2``, ``datasrc``, ``leaves``, ``zeros``, ``pc``) as
  signed 8-byte (``array("q")``) dumps, the boolean columns
  (``writes_cc``, ``reads_cc``, ``producer_ok``, ``consumer_ok``) as one
  byte per entry, and the signature strings as one newline-joined UTF-8
  blob;
- the dynamic columns, in order: ``sidx`` (signed 8-byte ``"q"``),
  ``eff_addr`` (signed 8-byte ``"q"``), ``taken`` (one byte per entry),
  ``mem_value`` (signed 8-byte ``"q"``).

Traces regenerate quickly from workloads, so this exists mainly to let the
benchmark harness and the experiment disk cache (``repro.cache``) share
expensive traces across processes and to make traces portable artifacts.
"""

import json
import struct
from array import array

from ..errors import TraceFormatError
from .records import DynTrace, StaticTable

MAGIC = b"REPROTR1"

_STATIC_NUMERIC = ("cls", "lat", "dest", "src1", "src2", "datasrc",
                   "leaves", "zeros", "pc")
_STATIC_BOOL = ("writes_cc", "reads_cc", "producer_ok", "consumer_ok")


def _write_block(handle, payload):
    handle.write(struct.pack("<I", len(payload)))
    handle.write(payload)


def _read_block(handle):
    raw = handle.read(4)
    if len(raw) != 4:
        raise TraceFormatError("truncated trace file (block header)")
    (length,) = struct.unpack("<I", raw)
    payload = handle.read(length)
    if len(payload) != length:
        raise TraceFormatError("truncated trace file (block payload)")
    return payload


def save_trace(trace, path):
    """Serialise ``trace`` to ``path``."""
    static = trace.static
    header = {
        "name": trace.name,
        "static_len": len(static),
        "dyn_len": len(trace),
        "version": 1,
    }
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        _write_block(handle, json.dumps(header).encode("utf-8"))
        for column in _STATIC_NUMERIC:
            values = array("q", getattr(static, column))
            _write_block(handle, values.tobytes())
        for column in _STATIC_BOOL:
            values = bytes(1 if flag else 0
                           for flag in getattr(static, column))
            _write_block(handle, values)
        _write_block(handle, "\n".join(static.sig).encode("utf-8"))
        _write_block(handle, array("q", trace.sidx).tobytes())
        _write_block(handle, array("q", trace.eff_addr).tobytes())
        _write_block(handle, bytes(1 if flag else 0 for flag in trace.taken))
        _write_block(handle, array("q", trace.mem_value).tobytes())


def load_trace(path):
    """Load a trace previously written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise TraceFormatError("bad magic: %r" % (magic,))
        header = json.loads(_read_block(handle).decode("utf-8"))
        if header.get("version") != 1:
            raise TraceFormatError(
                "unsupported version: %r" % (header.get("version"),))
        static = StaticTable()
        for column in _STATIC_NUMERIC:
            values = array("q")
            values.frombytes(_read_block(handle))
            setattr(static, column, list(values))
        for column in _STATIC_BOOL:
            setattr(static, column,
                    [byte != 0 for byte in _read_block(handle)])
        sig_blob = _read_block(handle).decode("utf-8")
        static.sig = sig_blob.split("\n") if sig_blob else []
        lengths = {len(getattr(static, col))
                   for col in _STATIC_NUMERIC + _STATIC_BOOL + ("sig",)}
        if lengths != {header["static_len"]}:
            raise TraceFormatError("static column length mismatch")
        trace = DynTrace(static, name=header.get("name", ""))
        sidx = array("q")
        sidx.frombytes(_read_block(handle))
        trace.sidx = list(sidx)
        eff = array("q")
        eff.frombytes(_read_block(handle))
        trace.eff_addr = list(eff)
        trace.taken = [byte != 0 for byte in _read_block(handle)]
        values = array("q")
        values.frombytes(_read_block(handle))
        trace.mem_value = list(values)
        for column in ("sidx", "eff_addr", "taken", "mem_value"):
            length = len(getattr(trace, column))
            if length != header["dyn_len"]:
                raise TraceFormatError(
                    "dynamic column %r length mismatch: %d != %d"
                    % (column, length, header["dyn_len"]))
        return trace
