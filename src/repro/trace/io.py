"""Binary save/load for dynamic traces (formats v1 and v2).

Format **v1**, all little-endian, every block length-prefixed with a u32
byte count:

- 8-byte magic ``b"REPROTR1"``;
- a JSON header block with trace name, version, and column counts;
- the static table: the numeric columns (``cls``, ``lat``, ``dest``,
  ``src1``, ``src2``, ``datasrc``, ``leaves``, ``zeros``, ``pc``) as
  signed 8-byte (``array("q")``) dumps, the boolean columns
  (``writes_cc``, ``reads_cc``, ``producer_ok``, ``consumer_ok``) as one
  byte per entry, and the signature strings as one newline-joined UTF-8
  blob;
- the dynamic columns, in order: ``sidx`` (signed 8-byte ``"q"``),
  ``eff_addr`` (signed 8-byte ``"q"``), ``taken`` (one byte per entry),
  ``mem_value`` (signed 8-byte ``"q"``).

v1 is kept readable and writable (``save_trace(..., version=1)``) but
has two structural limits this module now enforces instead of silently
corrupting data: block payloads beyond the u32 length prefix (~4 GiB,
reachable at scale ~1.0 column sizes) and signature strings containing
``"\\n"`` (which would split into extra entries on reload) raise
:class:`TraceFormatError` at save time.

Format **v2** (the default) is the structure-of-arrays layout:

- 8-byte magic ``b"REPROTR2"``, a u64 length-prefixed JSON header;
- every column of :data:`repro.trace.soa.TRACE_DTYPES` written as one
  contiguous little-endian block at a 64-byte-aligned offset recorded
  in the header, with u64 sizes throughout (no 4 GiB limit);
- signatures as an ``int64`` byte-offset array plus one UTF-8 blob
  (length-prefixed strings — newlines need no special casing).

Aligned blocks make a v2 file loadable zero-copy: :func:`load_trace`
maps each column with ``np.memmap`` and attaches the mapped arrays as
the trace's SoA snapshot, so the vectorized kernels read straight from
the page cache.  Both writers are atomic (temp file + ``os.replace``).

Traces regenerate quickly from workloads, so this exists mainly to let
the benchmark harness and the experiment disk cache (``repro.cache``)
share expensive traces across processes and to make traces portable
artifacts.
"""

import json
import os
import struct
from array import array

from .. import kernel
from ..errors import TraceFormatError
from ..fsutil import atomic_write
from .records import DynTrace, StaticTable

MAGIC = b"REPROTR1"
MAGIC2 = b"REPROTR2"

_U32_MAX = 0xFFFFFFFF
_ALIGN = 64

_STATIC_NUMERIC = ("cls", "lat", "dest", "src1", "src2", "datasrc",
                   "leaves", "zeros", "pc")
_STATIC_BOOL = ("writes_cc", "reads_cc", "producer_ok", "consumer_ok")

#: v2 column order: every TRACE_DTYPES column, static then dynamic.
_V2_COLUMNS = _STATIC_NUMERIC + _STATIC_BOOL + (
    "sidx", "eff_addr", "taken", "mem_value")
_V2_DYN = ("sidx", "eff_addr", "taken", "mem_value")


# ----------------------------------------------------------------------
# Format v1.
# ----------------------------------------------------------------------

def _write_block(handle, payload):
    if len(payload) > _U32_MAX:
        raise TraceFormatError(
            "column block of %d bytes exceeds format v1's u32 length "
            "prefix; save with version=2" % (len(payload),))
    handle.write(struct.pack("<I", len(payload)))
    handle.write(payload)


def _read_block(handle):
    raw = handle.read(4)
    if len(raw) != 4:
        raise TraceFormatError("truncated trace file (block header)")
    (length,) = struct.unpack("<I", raw)
    payload = handle.read(length)
    if len(payload) != length:
        raise TraceFormatError("truncated trace file (block payload)")
    return payload


def _check_sigs(sigs):
    for index, sig in enumerate(sigs):
        if "\n" in sig:
            raise TraceFormatError(
                "signature %d (%r) contains a newline, which the v1 "
                "newline-joined blob cannot represent" % (index, sig))


def _save_trace_v1(trace, path):
    static = trace.static
    _check_sigs(static.sig)
    header = {
        "name": trace.name,
        "static_len": len(static),
        "dyn_len": len(trace),
        "version": 1,
    }

    def write(tmp_path):
        with open(tmp_path, "wb") as handle:
            handle.write(MAGIC)
            _write_block(handle, json.dumps(header).encode("utf-8"))
            for column in _STATIC_NUMERIC:
                values = array("q", getattr(static, column))
                _write_block(handle, values.tobytes())
            for column in _STATIC_BOOL:
                values = bytes(1 if flag else 0
                               for flag in getattr(static, column))
                _write_block(handle, values)
            _write_block(handle, "\n".join(static.sig).encode("utf-8"))
            _write_block(handle, array("q", trace.sidx).tobytes())
            _write_block(handle, array("q", trace.eff_addr).tobytes())
            _write_block(handle, bytes(1 if flag else 0
                                       for flag in trace.taken))
            _write_block(handle, array("q", trace.mem_value).tobytes())

    atomic_write(path, write)


def _load_trace_v1(handle):
    header = json.loads(_read_block(handle).decode("utf-8"))
    if header.get("version") != 1:
        raise TraceFormatError(
            "unsupported version: %r" % (header.get("version"),))
    static = StaticTable()
    for column in _STATIC_NUMERIC:
        values = array("q")
        values.frombytes(_read_block(handle))
        setattr(static, column, list(values))
    for column in _STATIC_BOOL:
        setattr(static, column,
                [byte != 0 for byte in _read_block(handle)])
    sig_blob = _read_block(handle).decode("utf-8")
    # An empty blob is ambiguous between no signatures and one empty
    # signature; the header's static_len disambiguates (a table of N
    # entries always serialises to N-1 newlines, so split() recovers
    # empty strings correctly whenever the table is non-empty).
    static.sig = sig_blob.split("\n") if header["static_len"] else []
    lengths = {len(getattr(static, col))
               for col in _STATIC_NUMERIC + _STATIC_BOOL + ("sig",)}
    if lengths != {header["static_len"]}:
        raise TraceFormatError("static column length mismatch")
    trace = DynTrace(static, name=header.get("name", ""))
    sidx = array("q")
    sidx.frombytes(_read_block(handle))
    trace.sidx = list(sidx)
    eff = array("q")
    eff.frombytes(_read_block(handle))
    trace.eff_addr = list(eff)
    trace.taken = [byte != 0 for byte in _read_block(handle)]
    values = array("q")
    values.frombytes(_read_block(handle))
    trace.mem_value = list(values)
    for column in ("sidx", "eff_addr", "taken", "mem_value"):
        length = len(getattr(trace, column))
        if length != header["dyn_len"]:
            raise TraceFormatError(
                "dynamic column %r length mismatch: %d != %d"
                % (column, length, header["dyn_len"]))
    return trace


# ----------------------------------------------------------------------
# Format v2.
# ----------------------------------------------------------------------

def _align(offset):
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _v2_arrays(trace):
    """(column -> ndarray) plus the signature offset/blob arrays."""
    import numpy as np
    soa = trace.soa()
    arrays = {col: soa.col(col) for col in _V2_COLUMNS}
    encoded = [sig.encode("utf-8") for sig in trace.static.sig]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        offsets[1:] = np.cumsum([len(blob) for blob in encoded])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8) \
        if encoded else np.empty(0, dtype=np.uint8)
    return arrays, offsets, blob


def _save_trace_v2(trace, path):
    arrays, sig_offsets, sig_blob = _v2_arrays(trace)
    blocks = [("sig_offsets", sig_offsets), ("sig_blob", sig_blob)]
    blocks += [(col, arrays[col]) for col in _V2_COLUMNS]

    manifest = {}
    offset = 0
    for name, arr in blocks:
        offset = _align(offset)
        manifest[name] = {
            "offset": offset,
            "count": int(arr.shape[0]),
            "dtype": arr.dtype.name,
        }
        offset += arr.nbytes
    header = {
        "version": 2,
        "name": trace.name,
        "static_len": len(trace.static),
        "dyn_len": len(trace),
        "columns": manifest,
    }
    header_blob = json.dumps(header, sort_keys=True).encode("utf-8")

    def write(tmp_path):
        with open(tmp_path, "wb") as handle:
            handle.write(MAGIC2)
            handle.write(struct.pack("<Q", len(header_blob)))
            handle.write(header_blob)
            data_start = _align(handle.tell())
            for name, arr in blocks:
                target = data_start + manifest[name]["offset"]
                handle.write(b"\0" * (target - handle.tell()))
                handle.write(memoryview(arr).cast("B"))

    atomic_write(path, write)


def _load_trace_v2(handle, path, mmap):
    if not kernel.numpy_available():
        raise TraceFormatError(
            "trace file is format v2, which needs numpy to load "
            "(unavailable); regenerate the trace or install numpy")
    import numpy as np
    raw = handle.read(8)
    if len(raw) != 8:
        raise TraceFormatError("truncated trace file (v2 header length)")
    (header_len,) = struct.unpack("<Q", raw)
    header_blob = handle.read(header_len)
    if len(header_blob) != header_len:
        raise TraceFormatError("truncated trace file (v2 header)")
    header = json.loads(header_blob.decode("utf-8"))
    if header.get("version") != 2:
        raise TraceFormatError(
            "unsupported version: %r" % (header.get("version"),))
    manifest = header["columns"]
    data_start = _align(16 + header_len)
    file_size = os.fstat(handle.fileno()).st_size

    def column(name, expect_count=None, expect_dtype=None):
        try:
            meta = manifest[name]
        except KeyError:
            raise TraceFormatError("v2 header misses column %r" % (name,))
        dtype = np.dtype(meta["dtype"])
        if expect_dtype is not None and dtype != np.dtype(expect_dtype):
            raise TraceFormatError(
                "column %r has dtype %s, expected %s"
                % (name, dtype, np.dtype(expect_dtype)))
        count = int(meta["count"])
        if expect_count is not None and count != expect_count:
            raise TraceFormatError(
                "column %r length mismatch: %d != %d"
                % (name, count, expect_count))
        offset = data_start + int(meta["offset"])
        if offset + count * dtype.itemsize > file_size:
            raise TraceFormatError(
                "truncated trace file (column %r extends past EOF)"
                % (name,))
        if count == 0:
            return np.empty(0, dtype=dtype)
        if mmap:
            return np.memmap(path, dtype=dtype, mode="r", offset=offset,
                             shape=(count,))
        handle.seek(offset)
        payload = handle.read(count * dtype.itemsize)
        if len(payload) != count * dtype.itemsize:
            raise TraceFormatError(
                "truncated trace file (column %r payload)" % (name,))
        return np.frombuffer(payload, dtype=dtype)

    from .soa import DYN_COLUMNS, STATIC_COLUMNS, TRACE_DTYPES, TraceArrays
    static_len = int(header["static_len"])
    dyn_len = int(header["dyn_len"])
    arrays = {name: column(name, static_len, TRACE_DTYPES[name])
              for name in STATIC_COLUMNS}
    arrays.update({name: column(name, dyn_len, TRACE_DTYPES[name])
                   for name in DYN_COLUMNS})

    sig_offsets = column("sig_offsets", static_len + 1 if static_len
                         else None, np.int64)
    sig_blob = column("sig_blob", None, np.uint8)
    if static_len:
        bounds = sig_offsets.tolist()
        if bounds[0] != 0 or any(a > b for a, b in zip(bounds, bounds[1:])) \
                or bounds[-1] != sig_blob.shape[0]:
            raise TraceFormatError("malformed v2 signature offsets")
        blob_bytes = sig_blob.tobytes()
        sigs = [blob_bytes[a:b].decode("utf-8")
                for a, b in zip(bounds, bounds[1:])]
    else:
        sigs = []

    static = StaticTable()
    for name in STATIC_COLUMNS:
        setattr(static, name, arrays[name].tolist())
    static.sig = sigs
    trace = DynTrace(static, name=header.get("name", ""))
    for name in DYN_COLUMNS:
        setattr(trace, name, arrays[name].tolist())
    # Attach the (possibly memory-mapped) arrays as the SoA snapshot so
    # vectorized kernels reuse them zero-copy.
    trace._soa = TraceArrays(
        {name: arrays[name] for name in STATIC_COLUMNS},
        {name: arrays[name] for name in DYN_COLUMNS},
        name=trace.name)
    return trace


# ----------------------------------------------------------------------
# Public entry points.
# ----------------------------------------------------------------------

def save_trace(trace, path, version=None):
    """Serialise ``trace`` to ``path`` atomically.

    ``version=2`` (the default whenever numpy is importable) writes the
    aligned SoA format; ``version=1`` writes the legacy block format for
    compatibility and is the fallback default when numpy is missing.
    Requesting v2 explicitly without numpy raises
    :class:`TraceFormatError`.
    """
    if version is None:
        version = 2 if kernel.numpy_available() else 1
    if version == 2:
        if not kernel.numpy_available():
            raise TraceFormatError(
                "trace format v2 needs numpy (unavailable); "
                "save with version=1")
        _save_trace_v2(trace, path)
    elif version == 1:
        _save_trace_v1(trace, path)
    else:
        raise TraceFormatError("unknown trace format version: %r"
                               % (version,))


def load_trace(path, mmap=True):
    """Load a trace previously written by :func:`save_trace` (either
    format).  For v2 files ``mmap=True`` maps column blocks zero-copy;
    ``mmap=False`` reads them into process memory instead."""
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic == MAGIC:
            return _load_trace_v1(handle)
        if magic == MAGIC2:
            return _load_trace_v2(handle, os.fspath(path), mmap)
        raise TraceFormatError("bad magic: %r" % (magic,))
