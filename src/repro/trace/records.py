"""Dynamic-trace representation.

A dynamic trace is stored *columnar*: per-executed-instruction columns hold
only what varies dynamically (static instruction index, effective address,
branch direction), while everything derivable from the static instruction
(operation class, register sources, collapse signature, ...) lives in a
:class:`StaticTable` indexed by static instruction number.  This keeps a
multi-hundred-thousand-entry trace small and makes the timing simulator's
inner loop a series of list lookups.

For tests and synthetic workloads, :class:`TraceBuilder` constructs traces
directly without going through the assembler/emulator.
"""

from ..isa.opcodes import (
    CLASS_CODE,
    CLASS_LATENCY,
    COLLAPSIBLE_CONSUMERS,
    COLLAPSIBLE_PRODUCERS,
    OpClass,
)
from ..isa.registers import G0

#: Operation classes, re-exported for convenience.
AR = int(OpClass.AR)
LG = int(OpClass.LG)
SH = int(OpClass.SH)
MV = int(OpClass.MV)
LD = int(OpClass.LD)
ST = int(OpClass.ST)
BRC = int(OpClass.BRC)
CTI = int(OpClass.CTI)
MUL = int(OpClass.MUL)
DIV = int(OpClass.DIV)

_LATENCY = [0] * (max(int(c) for c in OpClass) + 1)
for _cls in OpClass:
    _LATENCY[int(_cls)] = CLASS_LATENCY[_cls]

_PRODUCER = [False] * len(_LATENCY)
for _cls in COLLAPSIBLE_PRODUCERS:
    _PRODUCER[int(_cls)] = True

_CONSUMER = [False] * len(_LATENCY)
for _cls in COLLAPSIBLE_CONSUMERS:
    _CONSUMER[int(_cls)] = True


class StaticTable:
    """Per-static-instruction metadata, stored as parallel lists.

    Columns
    -------
    cls:        operation class (int of :class:`OpClass`)
    lat:        execution latency in cycles
    dest:       destination register or -1
    writes_cc / reads_cc: condition-code production/consumption
    src1/src2:  register sources of the value/address expression (-1 absent;
                ``%g0`` is filtered out since it carries no dependence)
    datasrc:    store data register (-1 otherwise)
    sig:        paper-style collapse signature string (``arri``, ``ldrr``...)
    leaves:     non-zero expression operand count
    zeros:      count of zero operands detected (``%g0`` or immediate 0)
    pc:         byte address of the instruction
    """

    __slots__ = ("cls", "lat", "dest", "writes_cc", "reads_cc", "src1",
                 "src2", "datasrc", "sig", "leaves", "zeros", "pc",
                 "producer_ok", "consumer_ok")

    def __init__(self):
        self.cls = []
        self.lat = []
        self.dest = []
        self.writes_cc = []
        self.reads_cc = []
        self.src1 = []
        self.src2 = []
        self.datasrc = []
        self.sig = []
        self.leaves = []
        self.zeros = []
        self.pc = []
        self.producer_ok = []
        self.consumer_ok = []

    def __len__(self):
        return len(self.cls)

    def add(self, cls, dest=-1, writes_cc=False, reads_cc=False, src1=-1,
            src2=-1, datasrc=-1, sig="", leaves=0, zeros=0, pc=0):
        """Append one static entry; returns its index."""
        self.cls.append(cls)
        self.lat.append(_LATENCY[cls])
        self.dest.append(dest)
        self.writes_cc.append(writes_cc)
        self.reads_cc.append(reads_cc)
        self.src1.append(src1)
        self.src2.append(src2)
        self.datasrc.append(datasrc)
        self.sig.append(sig)
        self.leaves.append(leaves)
        self.zeros.append(zeros)
        self.pc.append(pc)
        self.producer_ok.append(_PRODUCER[cls])
        self.consumer_ok.append(_CONSUMER[cls])
        return len(self.cls) - 1

    @classmethod
    def from_program(cls_, program):
        """Build the static table for an assembled program."""
        table = cls_()
        for index, instr in enumerate(program.instructions):
            opclass = int(instr.opclass)
            # Register sources of the value/address expression.
            regs = [value for kind, value in instr.expression_operands()
                    if kind == "r" and value != G0]
            src1 = regs[0] if len(regs) >= 1 else -1
            src2 = regs[1] if len(regs) >= 2 else -1
            dest = instr.rd
            datasrc = -1
            if instr.is_store:
                # For stores Instruction.rd is the data source register.
                datasrc = instr.rd
                dest = -1
            if instr.opclass is OpClass.CTI and instr.rs1 >= 0:
                # jmpl reads its base register (a real dependence, though
                # not a collapsible expression operand).
                src1 = instr.rs1 if instr.rs1 != G0 else -1
            table.add(
                cls=opclass,
                dest=dest,
                writes_cc=instr.writes_cc,
                reads_cc=instr.reads_cc,
                src1=src1,
                src2=src2,
                datasrc=datasrc,
                sig=instr.signature(),
                leaves=instr.leaf_count(),
                zeros=instr.operand_type_string().count("0"),
                pc=program.address_of_index(index),
            )
        return table


class DynTrace:
    """One dynamic trace: columnar per-instruction data + static table.

    ``mem_value`` holds the loaded value for loads (0 elsewhere); it
    exists for the value-speculation extension and is not used by the
    paper's own configurations.
    """

    __slots__ = ("static", "sidx", "eff_addr", "taken", "mem_value",
                 "name", "_soa")

    def __init__(self, static, name=""):
        self.static = static
        self.sidx = []
        self.eff_addr = []
        self.taken = []
        self.mem_value = []
        self.name = name
        self._soa = None

    def __len__(self):
        return len(self.sidx)

    def soa(self):
        """Memoised structure-of-arrays snapshot (``repro.trace.soa``).

        The snapshot is rebuilt automatically if the trace grew since it
        was taken; the numpy kernels and format v2 consume it.
        """
        from .soa import trace_arrays
        return trace_arrays(self)

    # Convenience views used by tests and reporting -----------------------

    def classes(self):
        """Per-dynamic-instruction operation class list."""
        cls = self.static.cls
        return [cls[s] for s in self.sidx]

    def count_class(self, opclass):
        """Number of dynamic instructions of the given class."""
        target = int(opclass)
        cls = self.static.cls
        return sum(1 for s in self.sidx if cls[s] == target)

    def cond_branches(self):
        """Iterate ``(position, taken)`` over conditional branches."""
        cls = self.static.cls
        brc = BRC
        for position, s in enumerate(self.sidx):
            if cls[s] == brc:
                yield position, self.taken[position]


class TraceBuilder:
    """Construct synthetic traces directly (each dynamic instruction gets
    its own static entry, so ``sidx`` is simply 0..N-1 unless ``repeat`` is
    used).

    This is the workhorse of the unit tests: it lets a test express "a load
    depending on an add" in two lines without touching the assembler.
    """

    def __init__(self, name="synthetic"):
        self.static = StaticTable()
        self.trace = DynTrace(self.static, name=name)

    # -- helpers -----------------------------------------------------------

    def _sig(self, cls, srcs, imm, imm_zero):
        if cls == BRC:
            return "brc"
        chars = []
        for reg in srcs:
            if reg is None:
                continue
            chars.append("0" if reg == G0 else "r")
        if imm:
            chars.append("0" if imm_zero else "i")
        return CLASS_CODE[OpClass(cls)] + "".join(chars)

    def _emit(self, cls, dest=-1, src1=-1, src2=-1, datasrc=-1,
              writes_cc=False, reads_cc=False, imm=False, imm_zero=False,
              eff_addr=0, taken=False, value=0, pc=None):
        srcs = [s for s in (src1, src2) if s >= 0]
        sig = self._sig(cls, srcs, imm, imm_zero)
        body = sig[len(CLASS_CODE[OpClass(cls)]):]
        leaves = sum(1 for ch in body if ch != "0")
        zeros = sum(1 for ch in body if ch == "0")
        if cls == BRC:
            leaves = 1
            zeros = 0
        index = self.static.add(
            cls=cls, dest=dest, writes_cc=writes_cc, reads_cc=reads_cc,
            src1=src1 if src1 != G0 else -1,
            src2=src2 if src2 != G0 else -1,
            datasrc=datasrc if datasrc != G0 else -1,
            sig=sig, leaves=leaves, zeros=zeros,
            pc=0x1000 + 4 * len(self.static) if pc is None else pc)
        self.trace.sidx.append(index)
        self.trace.eff_addr.append(eff_addr)
        self.trace.taken.append(taken)
        self.trace.mem_value.append(value)
        return len(self.trace) - 1

    # -- public emitters -----------------------------------------------

    def alu(self, cls, dest, src1=-1, src2=-1, imm=False, imm_zero=False,
            writes_cc=False):
        """Append a computational instruction; returns its trace position."""
        return self._emit(cls, dest=dest, src1=src1, src2=src2, imm=imm,
                          imm_zero=imm_zero, writes_cc=writes_cc)

    def add(self, dest, src1=-1, src2=-1, imm=False, writes_cc=False):
        return self.alu(AR, dest, src1, src2, imm=imm, writes_cc=writes_cc)

    def logic(self, dest, src1=-1, src2=-1, imm=False):
        return self.alu(LG, dest, src1, src2, imm=imm)

    def shift(self, dest, src1=-1, src2=-1, imm=True):
        return self.alu(SH, dest, src1, src2, imm=imm)

    def move(self, dest, src=-1, imm=False):
        if imm:
            return self._emit(MV, dest=dest, imm=True)
        return self._emit(MV, dest=dest, src1=src)

    def mul(self, dest, src1, src2=-1, imm=False):
        return self._emit(MUL, dest=dest, src1=src1, src2=src2, imm=imm)

    def div(self, dest, src1, src2=-1, imm=False):
        return self._emit(DIV, dest=dest, src1=src1, src2=src2, imm=imm)

    def load(self, dest, addr_reg=-1, addr_reg2=-1, addr=0, imm=False,
             value=0):
        return self._emit(LD, dest=dest, src1=addr_reg, src2=addr_reg2,
                          imm=imm, eff_addr=addr, value=value)

    def store(self, datasrc, addr_reg=-1, addr_reg2=-1, addr=0, imm=False):
        return self._emit(ST, datasrc=datasrc, src1=addr_reg,
                          src2=addr_reg2, imm=imm, eff_addr=addr)

    def cmp(self, src1, src2=-1, imm=False):
        """A compare: arithmetic op writing only the condition codes."""
        return self._emit(AR, src1=src1, src2=src2, imm=imm, writes_cc=True)

    def branch(self, taken=True):
        return self._emit(BRC, reads_cc=True, taken=taken)

    def jump(self, src=-1):
        return self._emit(CTI, src1=src, taken=True)

    def repeat(self, template_position, eff_addr=0, taken=False, value=0):
        """Re-emit the static instruction behind an earlier trace position
        (same PC — this is how loop iterations share predictor state)."""
        sidx = self.trace.sidx[template_position]
        self.trace.sidx.append(sidx)
        self.trace.eff_addr.append(eff_addr)
        self.trace.taken.append(taken)
        self.trace.mem_value.append(value)
        return len(self.trace) - 1

    def build(self):
        return self.trace
