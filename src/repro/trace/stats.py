"""Descriptive statistics over dynamic traces (paper Tables 1 and 2 inputs).

These are *trace* properties, independent of any machine configuration:
instruction counts, class mix, conditional-branch fraction, load/store
fraction, and the shift-distance observation the paper uses to motivate
collapsing shifts (Section 3: "shift distances are dominated by a few
values").
"""

from collections import Counter

from ..isa.opcodes import OpClass
from .records import BRC, LD, SH, ST


class TraceStats:
    """Aggregate statistics for one dynamic trace."""

    def __init__(self, trace):
        self.name = trace.name
        self.length = len(trace)
        static = trace.static
        cls_col = static.cls
        counts = Counter()
        for s in trace.sidx:
            counts[cls_col[s]] += 1
        self.class_counts = dict(counts)

    # ------------------------------------------------------------------

    def count(self, opclass):
        return self.class_counts.get(int(opclass), 0)

    @property
    def cond_branch_fraction(self):
        """Fraction of dynamic instructions that are conditional branches
        (column 2 of the paper's Table 2)."""
        if not self.length:
            return 0.0
        return self.count(BRC) / self.length

    @property
    def load_fraction(self):
        if not self.length:
            return 0.0
        return self.count(LD) / self.length

    @property
    def store_fraction(self):
        if not self.length:
            return 0.0
        return self.count(ST) / self.length

    @property
    def shift_fraction(self):
        if not self.length:
            return 0.0
        return self.count(SH) / self.length

    def class_mix(self):
        """Mapping of class name to fraction of the trace."""
        if not self.length:
            return {}
        return {
            OpClass(cls).name.lower(): count / self.length
            for cls, count in sorted(self.class_counts.items())
        }

    def summary_row(self):
        """Row used by the Table 1 reproduction."""
        return {
            "name": self.name,
            "instructions": self.length,
            "cond_branch_pct": 100.0 * self.cond_branch_fraction,
            "load_pct": 100.0 * self.load_fraction,
            "store_pct": 100.0 * self.store_fraction,
        }


def signature_mix(trace, top=20):
    """Most common static-signature strings weighted dynamically.

    Useful for sanity-checking workloads against the paper's instruction-mix
    claims (e.g. shifts around 6% of the mix).
    """
    static = trace.static
    counts = Counter()
    for s in trace.sidx:
        counts[static.sig[s]] += 1
    total = max(1, len(trace))
    return [(sig, count / total) for sig, count in counts.most_common(top)]
