"""Trace transformations: slicing and concatenation.

The paper truncated long traces ("only the first 250 million instructions
of each benchmark trace were simulated"); these helpers give the same
control over our traces, plus concatenation for building repeated-phase
traces in tests and predictor studies.

Slices share the original static table (they are views of the same
program), so predictor state keyed by PC behaves exactly as it would on
the full trace's corresponding region.
"""

from ..errors import ReproError
from .records import DynTrace


def trace_slice(trace, start=0, stop=None, name=None):
    """The dynamic instructions ``[start:stop)`` as a new trace.

    Note that predictor and dependence state *before* ``start`` is lost,
    exactly as with the paper's truncation; use a warmup-aware experiment
    if that matters.
    """
    length = len(trace)
    if stop is None:
        stop = length
    if start < 0 or stop < start or stop > length:
        raise ReproError("bad slice [%r:%r) of a %d-instruction trace"
                         % (start, stop, length))
    out = DynTrace(trace.static,
                   name=name or "%s[%d:%d]" % (trace.name, start, stop))
    out.sidx = trace.sidx[start:stop]
    out.eff_addr = trace.eff_addr[start:stop]
    out.taken = trace.taken[start:stop]
    out.mem_value = trace.mem_value[start:stop]
    return out


def trace_concat(traces, name=None):
    """Concatenate traces that share one static table."""
    traces = list(traces)
    if not traces:
        raise ReproError("nothing to concatenate")
    static = traces[0].static
    for other in traces[1:]:
        if other.static is not static:
            raise ReproError(
                "traces must share a static table to concatenate "
                "(they come from the same program)")
    out = DynTrace(static, name=name or traces[0].name + "*")
    for piece in traces:
        out.sidx.extend(piece.sidx)
        out.eff_addr.extend(piece.eff_addr)
        out.taken.extend(piece.taken)
        out.mem_value.extend(piece.mem_value)
    return out


def truncate(trace, limit, name=None):
    """First ``limit`` dynamic instructions (paper-style truncation)."""
    return trace_slice(trace, 0, min(limit, len(trace)), name=name)
