"""Synthetic trace generators.

Used by unit/property tests (known dependence structure, no assembler in
the loop) and by micro-benchmarks that need traces with one controlled
property: a serial dependence chain, an embarrassingly parallel stream,
strided loads, or pointer-chasing loads.
"""

import random

from .records import AR, LG, MV, SH, TraceBuilder


def dependent_chain(length, cls=AR):
    """A pure serial chain: every instruction consumes its predecessor.

    The base machine can never issue more than one of these per cycle, so
    the trace pins down scheduler serialisation and collapse speedups.
    """
    builder = TraceBuilder(name="chain")
    builder.alu(cls, dest=1, src1=2, imm=True)
    for _ in range(length - 1):
        builder.alu(cls, dest=1, src1=1, imm=True)
    return builder.build()


def independent_stream(length, regs=16):
    """Fully parallel instructions: register i only ever depends on itself
    being written by a move, so IPC is limited purely by issue width."""
    builder = TraceBuilder(name="independent")
    for i in range(length):
        builder.move(dest=1 + (i % regs), imm=True)
    return builder.build()


def strided_load_loop(iterations, stride=4, base=0x10000):
    """The classic stride pattern: ``p += stride; x = [p]; acc += x``.

    Every load address is perfectly predictable by a two-delta table, and
    the address-generation add is collapsible into the load.
    """
    builder = TraceBuilder(name="strided")
    builder.move(dest=1, imm=True)           # p = base
    builder.move(dest=2, imm=True)           # acc = 0
    address = base + stride
    # First iteration creates the static loop body; later iterations
    # replay the same static instructions (same PCs) so the stride table
    # trains exactly like it would on a real loop.
    bump = builder.add(dest=1, src1=1, imm=True)        # p += stride
    load = builder.load(dest=3, addr_reg=1, addr=address)
    accum = builder.add(dest=2, src1=2, src2=3)         # acc += x
    for _ in range(iterations - 1):
        address += stride
        builder.repeat(bump)
        builder.repeat(load, eff_addr=address)
        builder.repeat(accum)
    return builder.build()


def pointer_chase_loop(iterations, seed=7, heap=0x40000, nodes=1024):
    """Linked-list walk: each load address is the value of the previous
    load, so a stride predictor fails almost always."""
    rng = random.Random(seed)
    addresses = [heap + 16 * rng.randrange(nodes) for _ in range(iterations)]
    builder = TraceBuilder(name="pointer-chase")
    builder.move(dest=1, imm=True)          # p = head
    builder.move(dest=2, imm=True)          # acc
    load = builder.load(dest=1, addr_reg=1, addr=addresses[0])
    accum = builder.add(dest=2, src1=2, src2=1)
    for address in addresses[1:]:
        builder.repeat(load, eff_addr=address)  # p = p->next
        builder.repeat(accum)                   # acc += p
    return builder.build()


def collapsible_pairs(pairs):
    """``pairs`` repetitions of an (add, dependent add) couple; the pairs
    themselves are independent of each other."""
    builder = TraceBuilder(name="pairs")
    for i in range(pairs):
        lo = 1 + 2 * (i % 8)
        builder.add(dest=lo, src1=31, imm=True)
        builder.add(dest=lo + 1, src1=lo, imm=True)
    return builder.build()


def random_trace(length, seed=0, regs=24, load_frac=0.2, store_frac=0.08,
                 branch_frac=0.12, name="random"):
    """A randomised but well-formed trace for property-based tests.

    Every register read is preceded (eventually) by a write because the
    builder seeds all registers via moves; branch outcomes are random.
    """
    rng = random.Random(seed)
    builder = TraceBuilder(name=name)
    for reg in range(1, min(regs, 31) + 1):
        builder.move(dest=reg, imm=True)
    live = list(range(1, min(regs, 31) + 1))
    compare_pending = False
    for _ in range(length):
        roll = rng.random()
        dest = rng.choice(live)
        if roll < load_frac:
            builder.load(dest=dest, addr_reg=rng.choice(live),
                         addr=0x10000 + 4 * rng.randrange(4096))
        elif roll < load_frac + store_frac:
            builder.store(datasrc=rng.choice(live),
                          addr_reg=rng.choice(live),
                          addr=0x10000 + 4 * rng.randrange(4096))
        elif roll < load_frac + store_frac + branch_frac:
            if not compare_pending:
                builder.cmp(src1=rng.choice(live), imm=True)
                compare_pending = True
            builder.branch(taken=rng.random() < 0.6)
            compare_pending = False
        else:
            cls = rng.choice((AR, AR, AR, LG, SH, MV))
            if cls == MV:
                builder.move(dest=dest, imm=True)
            elif rng.random() < 0.5:
                builder.alu(cls, dest=dest, src1=rng.choice(live), imm=True)
            else:
                builder.alu(cls, dest=dest, src1=rng.choice(live),
                            src2=rng.choice(live))
    return builder.build()
