"""Structure-of-arrays view of a dynamic trace.

The canonical trace representation (:mod:`repro.trace.records`) stores
columns as Python lists, which the event-driven scheduler indexes one
element at a time — numpy scalar indexing would slow that loop down, so
the lists stay authoritative.  The vectorized kernels instead consume a
cached :class:`TraceArrays` snapshot whose columns are ndarrays with the
dtypes of :data:`TRACE_DTYPES`; format v2 of :mod:`repro.trace.io`
writes exactly these arrays as aligned blocks so a saved trace can be
mapped back zero-copy with ``np.memmap``.

``DynTrace.soa()`` builds the snapshot lazily and memoises it; the
snapshot remembers the trace length and is rebuilt transparently if the
trace grew since (traces are append-only during construction and
immutable afterwards).
"""

import numpy as np

#: dtype schema of every serialised column, static then dynamic.  The
#: int64/bool choice matches format v1's signed 8-byte / one-byte-flag
#: encoding so both formats round-trip the same values.
TRACE_DTYPES = {
    # static table ----------------------------------------------------
    "cls": np.int64,
    "lat": np.int64,
    "dest": np.int64,
    "writes_cc": np.bool_,
    "reads_cc": np.bool_,
    "src1": np.int64,
    "src2": np.int64,
    "datasrc": np.int64,
    "leaves": np.int64,
    "zeros": np.int64,
    "pc": np.int64,
    "producer_ok": np.bool_,
    "consumer_ok": np.bool_,
    # dynamic columns -------------------------------------------------
    "sidx": np.int64,
    "eff_addr": np.int64,
    "taken": np.bool_,
    "mem_value": np.int64,
}

STATIC_COLUMNS = ("cls", "lat", "dest", "writes_cc", "reads_cc", "src1",
                  "src2", "datasrc", "leaves", "zeros", "pc",
                  "producer_ok", "consumer_ok")
DYN_COLUMNS = ("sidx", "eff_addr", "taken", "mem_value")


def _freeze(array):
    array.flags.writeable = False
    return array


class TraceArrays:
    """Read-only ndarray snapshot of one trace's columns.

    Static columns keep their per-static-index shape; convenience
    ``*_d`` accessors gather them to per-dynamic-position shape.  The
    ``cache`` dict is scratch space for analysis layers (dependence
    columns, depth variants) that want per-trace memoisation without
    the trace package importing them.
    """

    __slots__ = ("n", "static_len", "name", "static", "dyn", "cache",
                 "_gathered")

    def __init__(self, static, dyn, name=""):
        self.static = {col: _freeze(np.ascontiguousarray(
            arr, dtype=TRACE_DTYPES[col])) for col, arr in static.items()}
        self.dyn = {col: _freeze(np.ascontiguousarray(
            arr, dtype=TRACE_DTYPES[col])) for col, arr in dyn.items()}
        self.name = name
        self.n = int(self.dyn["sidx"].shape[0])
        self.static_len = int(self.static["cls"].shape[0])
        self.cache = {}
        self._gathered = {}

    @classmethod
    def from_trace(cls, trace):
        static = trace.static
        return cls(
            {col: np.asarray(getattr(static, col),
                             dtype=TRACE_DTYPES[col])
             for col in STATIC_COLUMNS},
            {col: np.asarray(getattr(trace, col), dtype=TRACE_DTYPES[col])
             for col in DYN_COLUMNS},
            name=trace.name)

    def __len__(self):
        return self.n

    def col(self, name):
        """A serialised column by name (static or dynamic shape)."""
        if name in self.dyn:
            return self.dyn[name]
        return self.static[name]

    def gathered(self, name):
        """Static column gathered to dynamic shape (memoised)."""
        array = self._gathered.get(name)
        if array is None:
            array = _freeze(self.static[name][self.dyn["sidx"]])
            self._gathered[name] = array
        return array


def trace_arrays(trace):
    """The memoised :class:`TraceArrays` snapshot for ``trace``."""
    cached = getattr(trace, "_soa", None)
    if cached is not None and cached.n == len(trace) \
            and cached.static_len == len(trace.static):
        return cached
    arrays = TraceArrays.from_trace(trace)
    try:
        trace._soa = arrays
    except AttributeError:  # __slots__ without _soa (defensive)
        pass
    return arrays
