"""Dynamic-trace representation, statistics, serialisation and synthesis."""

from .io import load_trace, save_trace
from .records import (
    AR, BRC, CTI, DIV, LD, LG, MUL, MV, SH, ST,
    DynTrace, StaticTable, TraceBuilder,
)
from .stats import TraceStats, signature_mix
from .transform import trace_concat, trace_slice, truncate

__all__ = [
    "AR", "BRC", "CTI", "DIV", "LD", "LG", "MUL", "MV", "SH", "ST",
    "DynTrace", "StaticTable", "TraceBuilder",
    "TraceStats", "signature_mix",
    "load_trace", "save_trace",
    "trace_concat", "trace_slice", "truncate",
]
