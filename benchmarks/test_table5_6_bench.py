"""Benches regenerating Tables 5 and 6 (collapsed sequence mixes)."""

from conftest import once

from repro.experiments import table5, table6


def test_table5_pair_sequences(benchmark, runner):
    exhibit = once(benchmark, lambda: table5(runner))
    print("\n" + exhibit.render())
    assert len(exhibit.rows) >= 5
    pairs = {tuple(row[:2]) for row in exhibit.rows}
    # Compare->branch collapsing is a top pair in the paper (arrr-brc /
    # arri-brc); our kernels must reproduce that pattern.
    assert any(op2 == "brc" for _, op2 in pairs)
    # Address-generation collapses into loads appear as well.
    assert any(op2.startswith("ld") for _, op2 in pairs)


def test_table6_triple_sequences(benchmark, runner):
    exhibit = once(benchmark, lambda: table6(runner))
    print("\n" + exhibit.render())
    assert len(exhibit.rows) >= 5
    for row in exhibit.rows:
        shares = [v for v in row[3:] if isinstance(v, float)]
        assert all(0.0 <= v <= 100.0 for v in shares)
