"""Benches regenerating Figures 6 and 7 (non pointer-chasing subset)."""

from conftest import once

from repro.experiments import figure5, figure6, figure7


def test_figure6_ipc_non_pointer(benchmark, runner):
    exhibit = once(benchmark, lambda: figure6(runner))
    print("\n" + exhibit.render())
    for row in exhibit.rows:
        _, a, b, c, d, e = row
        assert e >= d >= c * 0.999 >= a * 0.98


def test_figure7_speedup_non_pointer(benchmark, runner):
    exhibit = once(benchmark, lambda: figure7(runner))
    print("\n" + exhibit.render())
    chasing = figure5(runner)
    for regular_row, chase_row in zip(exhibit.rows, chasing.rows):
        # Paper: B contributes visibly here, unlike the pointer set, and
        # the ideal/realistic gap is smaller.
        assert regular_row[1] >= chase_row[1] - 0.02
        regular_gap = regular_row[4] - regular_row[3]
        chase_gap = chase_row[4] - chase_row[3]
        assert regular_gap <= chase_gap + 0.35
