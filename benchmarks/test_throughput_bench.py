"""Raw component throughput benches (real multi-round timings).

Unlike the exhibit benches these measure hot paths with fresh state per
round: the functional emulator, the predictors, and the windowed
scheduler per configuration.
"""

import pytest

from repro.addrpred import run_address_predictor
from repro.bpred import run_branch_predictor
from repro.core import branch_outcomes, paper_config
from repro.core.scheduler import WindowScheduler
from repro.core.simulator import load_outcomes
from repro.emu import trace_program
from repro.workloads import cached_trace, get_workload

SCALE = 0.08


@pytest.fixture(scope="module")
def trace():
    return cached_trace("espresso", SCALE)


@pytest.fixture(scope="module")
def branch(trace):
    return branch_outcomes(trace)


@pytest.fixture(scope="module")
def loads(trace):
    return load_outcomes(trace)


def test_emulator_throughput(benchmark):
    program = get_workload("eqntott").build(scale=SCALE)
    result = benchmark.pedantic(
        lambda: trace_program(program, name="eqntott"),
        rounds=3, iterations=1)
    assert len(result[0]) > 1000


def test_branch_predictor_throughput(benchmark, trace):
    result = benchmark.pedantic(lambda: run_branch_predictor(trace),
                                rounds=3, iterations=1)
    assert result.conditional > 0


def test_address_predictor_throughput(benchmark, trace):
    result = benchmark.pedantic(lambda: run_address_predictor(trace),
                                rounds=3, iterations=1)
    assert result.loads > 0


@pytest.mark.parametrize("letter", ["A", "B", "C", "D", "E"])
def test_scheduler_throughput_by_config(benchmark, trace, branch, loads,
                                        letter):
    config = paper_config(letter, 16)
    prediction = loads if config.load_spec == "real" else None

    def run():
        return WindowScheduler(trace, config, branch, prediction).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.instructions == len(trace)


def test_scheduler_throughput_wide_window(benchmark, trace, branch, loads):
    """The 2048-wide / 4096-window configuration must stay tractable
    (event-driven scheduling, DESIGN.md)."""
    config = paper_config("D", 2048)

    def run():
        return WindowScheduler(trace, config, branch, loads).run()

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.ipc > 1.0
