"""Ablation bench: control-prediction quality vs. attainable speedup.

Section 1 of the paper: "Significant performance is achieved with perfect
branch prediction, but gains are diminished when using realistic
prediction."  This bench sweeps predictor quality under configuration D
to show how much of the d-speculation/d-collapsing potential each
front end can actually harvest.
"""

import pytest

from repro.bpred import (
    BimodalPredictor,
    CombiningPredictor,
    LocalHistoryPredictor,
    PerfectPredictor,
    StaticPredictor,
    run_branch_predictor,
)
from repro.collapse import CollapseRules
from repro.core import MachineConfig
from repro.core.scheduler import WindowScheduler
from repro.core.simulator import load_outcomes
from repro.metrics import arithmetic_mean, harmonic_mean, render_table
from repro.workloads import suite_traces

SCALE = 0.06
WIDTH = 16

PREDICTORS = (
    ("always-taken", lambda: StaticPredictor(True)),
    ("bimodal", BimodalPredictor),
    ("local-history", LocalHistoryPredictor),
    ("combining 8kB (paper)", CombiningPredictor),
    ("perfect", PerfectPredictor),
)


@pytest.fixture(scope="module")
def prepared():
    traces = suite_traces(scale=SCALE)
    return [(trace, load_outcomes(trace)) for trace in traces]


def test_branch_predictor_quality_ablation(benchmark, prepared):
    config_d = MachineConfig(WIDTH, collapse_rules=CollapseRules.paper(),
                             load_spec="real")
    config_a = MachineConfig(WIDTH)

    def sweep():
        rows = []
        for label, factory in PREDICTORS:
            accuracies = []
            d_ipcs = []
            speedups = []
            for trace, loads in prepared:
                branch = run_branch_predictor(trace, factory())
                accuracies.append(branch.accuracy)
                base = WindowScheduler(trace, config_a, branch).run()
                result = WindowScheduler(trace, config_d, branch,
                                         loads).run()
                d_ipcs.append(result.ipc)
                speedups.append(result.speedup_over(base))
            rows.append([label,
                         100 * arithmetic_mean(accuracies),
                         harmonic_mean(d_ipcs),
                         harmonic_mean(speedups)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + render_table(
        ["predictor", "accuracy (%)", "D IPC", "D speedup over A"],
        rows, title="branch-prediction ablation (width %d)" % WIDTH))
    by_label = {row[0]: row for row in rows}
    # Better predictors give better absolute IPC.
    assert by_label["perfect"][2] >= by_label["combining 8kB (paper)"][2]
    assert by_label["combining 8kB (paper)"][2] >= \
        by_label["always-taken"][2]
    # The paper's predictor must be close to local-history or better.
    assert by_label["combining 8kB (paper)"][1] >= \
        by_label["bimodal"][1] - 1.0
