"""Benches regenerating Figures 2 and 3 (IPC and speedup, full suite)."""

from conftest import once

from repro.experiments import figure2, figure3


def test_figure2_ipc(benchmark, runner):
    exhibit = once(benchmark, lambda: figure2(runner))
    print("\n" + exhibit.render())
    for row in exhibit.rows:
        _, a, b, c, d, e = row
        assert e >= d >= c >= b * 0.999 >= a * 0.98


def test_figure3_speedup(benchmark, runner):
    exhibit = once(benchmark, lambda: figure3(runner))
    print("\n" + exhibit.render())
    for row in exhibit.rows:
        _, b, c, d, e = row
        # Paper headline: D in the 1.2-1.9 band growing with width,
        # collapsing the dominant contributor, E the envelope.
        assert d > 1.1
        assert (c - 1) > (b - 1)
        assert e >= d
    d_column = [row[3] for row in exhibit.rows]
    assert d_column == sorted(d_column) or \
        max(a - b for a, b in zip(d_column, d_column[1:])) < 0.05
