"""Benches regenerating Tables 3 and 4 (load-speculation behaviour)."""

from conftest import once

from repro.experiments import table3, table4


def test_table3_pointer_chasing_loads(benchmark, runner):
    exhibit = once(benchmark, lambda: table3(runner))
    print("\n" + exhibit.render())
    for row in exhibit.rows:
        _, ready, correct, incorrect, missing = row
        assert abs(ready + correct + incorrect + missing - 100.0) < 0.2
        # Paper: low success rate, dominated by not-predicted loads,
        # very few wrong predictions (the confidence counter works).
        assert missing > correct
        assert incorrect < 12.0


def test_table4_non_pointer_loads(benchmark, runner):
    exhibit = once(benchmark, lambda: table4(runner))
    print("\n" + exhibit.render())
    chasing = table3(runner)
    for regular_row, chase_row in zip(exhibit.rows, chasing.rows):
        # Paper: regular codes predict far better and miss far less.
        assert regular_row[2] > chase_row[2] + 10.0
        assert regular_row[4] < chase_row[4]
