"""SoA trace-core benches: scalar vs numpy kernels, plus the snapshot.

Real multi-round timings of the paths the SoA refactor vectorized —
fused dependence-depth propagation, the three predictor sweeps, SoA
snapshot construction, and format-v2 save/load — each parametrized
over ``REPRO_KERNEL`` so a run shows both sides.  The committed
speedup snapshot lives in ``benchmarks/BENCH_trace_core.json``
(refresh with ``python -m repro.bench.trace_core --write``); the
measuring regression gate runs in CI via
``python -m repro.bench.trace_core --check``, while here a cheap test
validates the snapshot's shape and recorded acceptance floor.
"""

import json
import os
from pathlib import Path

import pytest

pytest.importorskip("numpy", reason="trace-core benches compare kernels", exc_type=ImportError)

from repro import kernel
from repro.addrpred import run_address_predictor
from repro.bench.trace_core import DEPTH_FLOOR, GATED, SNAPSHOT
from repro.bpred import run_branch_predictor
from repro.trace.io import load_trace, save_trace
from repro.vpred import run_value_predictor
from repro.workloads import cached_trace

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.08"))
KERNEL_MATRIX = ["python", "numpy"]


@pytest.fixture(scope="module")
def trace():
    return cached_trace("espresso", BENCH_SCALE)


def _kernelized(benchmark, kern, fn, rounds=3):
    def run():
        with kernel.kernel_override(kern):
            return fn()
    return benchmark.pedantic(run, rounds=rounds, iterations=1)


@pytest.mark.parametrize("kern", KERNEL_MATRIX)
def test_depth_kernel(benchmark, trace, kern):
    from repro.analysis.depgraph import (DependenceGraph,
                                         restructured_depths)
    from repro.bench.trace_core import _clear_depth_cache

    def all_variants():
        # Cold each round: the numpy side re-derives its dependence
        # columns, the scalar side re-walks the rename state.
        _clear_depth_cache(trace)
        DependenceGraph(trace).depths()
        restructured_depths(trace, collapse=True)
        restructured_depths(trace, collapse=True, cut_all_loads=True)
        restructured_depths(trace, cut_all_loads=True)

    _kernelized(benchmark, kern, all_variants)


def test_depth_kernel_numpy_warm(benchmark, trace):
    """The fused propagation alone, dependence columns pre-built —
    the figure the >=10x acceptance criterion gates at scale 0.1."""
    from repro.analysis.nkernel import _propagate, dep_columns

    with kernel.kernel_override("numpy"):
        columns = dep_columns(trace)
        result = benchmark.pedantic(lambda: _propagate(columns),
                                    rounds=5, iterations=1)
    assert result.shape[0] == len(trace)


@pytest.mark.parametrize("kern", KERNEL_MATRIX)
def test_branch_sweep(benchmark, trace, kern):
    result = _kernelized(benchmark, kern,
                         lambda: run_branch_predictor(trace))
    assert result.conditional > 0


@pytest.mark.parametrize("kern", KERNEL_MATRIX)
def test_address_sweep(benchmark, trace, kern):
    result = _kernelized(
        benchmark, kern,
        lambda: run_address_predictor(trace, per_pc=True))
    assert result.loads > 0


@pytest.mark.parametrize("kern", KERNEL_MATRIX)
def test_value_sweep(benchmark, trace, kern):
    result = _kernelized(benchmark, kern,
                         lambda: run_value_predictor(trace))
    assert result.loads > 0


def test_soa_snapshot_build(benchmark, trace):
    def rebuild():
        trace._soa = None
        return trace.soa()
    soa = benchmark.pedantic(rebuild, rounds=3, iterations=1)
    assert soa.n == len(trace)


def test_trace_v2_round_trip(benchmark, trace, tmp_path):
    path = tmp_path / "bench.trace"

    def round_trip():
        save_trace(trace, path, version=2)
        return load_trace(path, mmap=True)

    loaded = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    assert len(loaded) == len(trace)


def test_snapshot_records_acceptance_floor():
    """The committed snapshot must exist, cover the gated fields, and
    record the depth-kernel acceptance floor at scale 0.1."""
    snapshot = json.loads(Path(SNAPSHOT).read_text())
    assert snapshot["scale"] == 0.1
    assert snapshot["workloads"], "empty snapshot"
    for name, row in snapshot["workloads"].items():
        for field in GATED:
            assert field in row, (name, field)
        assert row["depth_speedup"] >= DEPTH_FLOOR, \
            (name, row["depth_speedup"])
    assert snapshot["suite"]["depth_speedup_min"] >= DEPTH_FLOOR
