"""Ablation bench: idealised fetch vs. taken-branch fetch breaks.

The paper assumes fetch crosses taken branches freely (zero-penalty
correct predictions).  This bench quantifies how much of configuration
D's speedup survives a single-fetch-block front end — a realism knob
limit studies often vary (cf. Wall).
"""

import pytest

from repro.collapse import CollapseRules
from repro.core import MachineConfig, branch_outcomes
from repro.core.scheduler import WindowScheduler
from repro.core.simulator import load_outcomes
from repro.metrics import harmonic_mean, render_table
from repro.workloads import suite_traces

SCALE = 0.06
WIDTH = 16


@pytest.fixture(scope="module")
def prepared():
    traces = suite_traces(scale=SCALE)
    return [(trace, branch_outcomes(trace), load_outcomes(trace))
            for trace in traces]


def _mean_ipc(prepared, collapse, fetch_break):
    rules = CollapseRules.paper() if collapse else None
    config = MachineConfig(WIDTH, collapse_rules=rules,
                           load_spec="real" if collapse else "none",
                           fetch_taken_break=fetch_break)
    ipcs = []
    for trace, branch, loads in prepared:
        prediction = loads if collapse else None
        ipcs.append(WindowScheduler(trace, config, branch,
                                    prediction).run().ipc)
    return harmonic_mean(ipcs)


def test_fetch_model_ablation(benchmark, prepared):
    def sweep():
        return {
            (collapse, fetch_break):
                _mean_ipc(prepared, collapse, fetch_break)
            for collapse in (False, True)
            for fetch_break in (False, True)
        }

    ipcs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        ["paper fetch", ipcs[(False, False)], ipcs[(True, False)],
         ipcs[(True, False)] / ipcs[(False, False)]],
        ["taken-break fetch", ipcs[(False, True)], ipcs[(True, True)],
         ipcs[(True, True)] / ipcs[(False, True)]],
    ]
    print("\n" + render_table(
        ["front end", "base IPC", "D IPC", "D speedup"], rows,
        title="fetch-model ablation (width %d)" % WIDTH))
    # Fetch breaks hurt absolute IPC...
    assert ipcs[(False, True)] <= ipcs[(False, False)]
    assert ipcs[(True, True)] <= ipcs[(True, False)]
    # ...but the *relative* benefit of speculation+collapsing survives.
    relative = ipcs[(True, True)] / ipcs[(False, True)]
    assert relative > 1.1
