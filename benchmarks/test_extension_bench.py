"""Extension benches: node elimination (Fig 1.f) and value speculation
(Fig 1.d) on top of configuration D."""

from conftest import once

from repro.experiments import elimination_counts, extension_figure


def test_extension_speedups(benchmark, runner):
    exhibit = once(benchmark, lambda: extension_figure(runner))
    print("\n" + exhibit.render())
    headers = exhibit.headers
    d_col = headers.index("D")
    both_col = headers.index("D+both")
    e_col = headers.index("E")
    for row in exhibit.rows:
        # Extensions may only help (they remove work or dependences).
        assert row[both_col] >= row[d_col] * 0.999
        assert row[headers.index("D+elim")] >= row[d_col] * 0.999
        assert row[headers.index("D+vspec")] >= row[d_col] * 0.999
        assert row[e_col] > 1.0


def test_elimination_counts(benchmark, runner):
    exhibit = once(benchmark, lambda: elimination_counts(runner, width=16))
    print("\n" + exhibit.render())
    fractions = {row[0]: row[2] for row in exhibit.rows}
    # Collapsing-heavy kernels expose eliminable producers everywhere.
    assert all(0.0 <= value <= 100.0 for value in fractions.values())
    assert sum(1 for value in fractions.values() if value > 0.0) >= 4
