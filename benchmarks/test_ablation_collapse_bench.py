"""Ablation bench: which parts of the collapsing model matter?

DESIGN.md Section 6: pairs-only vs triples, consecutive-only vs any
distance, within-block vs across blocks, zero detection on/off.  The
paper motivates each generalisation (Section 2 "models used in this work
differentiate from previous studies"); this bench quantifies them.
"""

import pytest

from repro.collapse import CollapseRules
from repro.core import MachineConfig, branch_outcomes
from repro.core.scheduler import WindowScheduler
from repro.metrics import harmonic_mean, render_table
from repro.workloads import suite_traces

SCALE = 0.06
WIDTH = 16

VARIANTS = [
    ("paper", CollapseRules.paper()),
    ("pairs-only", CollapseRules.pairs_only()),
    ("consecutive-only", CollapseRules.consecutive_only()),
    ("within-block", CollapseRules.within_block_only()),
    ("no-zero-detect", CollapseRules.no_zero_detection()),
    ("none", None),
]


@pytest.fixture(scope="module")
def prepared():
    traces = suite_traces(scale=SCALE)
    return [(trace, branch_outcomes(trace)) for trace in traces]


def _mean_ipc(prepared, rules):
    config = MachineConfig(WIDTH, collapse_rules=rules)
    ipcs = []
    for trace, branch in prepared:
        ipcs.append(WindowScheduler(trace, config, branch).run().ipc)
    return harmonic_mean(ipcs)


def test_collapse_rule_ablation(benchmark, prepared):
    def sweep():
        return {label: _mean_ipc(prepared, rules)
                for label, rules in VARIANTS}

    ipcs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[label, ipcs[label], ipcs[label] / ipcs["none"]]
            for label, _ in VARIANTS]
    print("\n" + render_table(
        ["rules", "hmean IPC", "speedup vs none"], rows,
        title="collapse-rule ablation (width %d)" % WIDTH))
    # Every restriction must cost performance relative to the paper
    # model, and every variant must still beat no collapsing.
    paper = ipcs["paper"]
    for label, _ in VARIANTS[1:-1]:
        assert ipcs[label] <= paper * 1.001
        assert ipcs[label] > ipcs["none"]
    # Non-consecutive collapsing is the biggest single generaliser for
    # wide machines (Figure 10's motivation).
    assert ipcs["consecutive-only"] < paper * 0.99
