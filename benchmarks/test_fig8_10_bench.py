"""Benches regenerating Figures 8, 9 and 10 (collapsing behaviour)."""

from conftest import once

from repro.experiments import figure8, figure9, figure10


def test_figure8_instructions_collapsed(benchmark, runner):
    exhibit = once(benchmark, lambda: figure8(runner))
    print("\n" + exhibit.render())
    li_index = exhibit.headers.index("li")
    workload_count = len(exhibit.headers) - 2
    for row in exhibit.rows:
        values = row[1:1 + workload_count]
        assert all(0.0 < v <= 100.0 for v in values)
        # li (call/pointer-heavy) collapses least, as in the paper.
        assert row[li_index] == min(values)
    means = [row[-1] for row in exhibit.rows]
    assert means[-1] >= means[0] - 1.0      # grows (or holds) with width


def test_figure9_mechanism_contributions(benchmark, runner):
    exhibit = once(benchmark, lambda: figure9(runner))
    print("\n" + exhibit.render())
    for row in exhibit.rows:
        _, cat31, cat41, cat0 = row
        # Paper: 3-1 contributes 65-82% at widths <= 32, 4-1 13-30%,
        # zero-op detection 5-10%; 3-1 always dominates.
        assert cat31 > cat41 > 0
        assert cat31 > 50.0
        assert abs(cat31 + cat41 + cat0 - 100.0) < 0.1


def test_figure10_collapse_distance(benchmark, runner):
    exhibit = once(benchmark, lambda: figure10(runner))
    print("\n" + exhibit.render())
    consecutive = {row[0]: row[1] for row in exhibit.rows}
    within8 = {row[0]: row[-1] for row in exhibit.rows}
    # Paper: distance almost always < 8 even at width 2k, and wide
    # machines collapse mostly non-consecutive instructions.
    assert all(v > 80.0 for v in within8.values())
    assert consecutive["2k"] < 100.0
