"""Benches regenerating Figures 4 and 5 (pointer-chasing subset)."""

from conftest import once

from repro.experiments import figure4, figure5


def test_figure4_ipc_pointer_chasing(benchmark, runner):
    exhibit = once(benchmark, lambda: figure4(runner))
    print("\n" + exhibit.render())
    for row in exhibit.rows:
        _, a, b, c, d, e = row
        assert e >= d >= a * 0.999


def test_figure5_speedup_pointer_chasing(benchmark, runner):
    exhibit = once(benchmark, lambda: figure5(runner))
    print("\n" + exhibit.render())
    for row in exhibit.rows:
        _, b, c, d, e = row
        # Paper: realistic load-speculation alone is worth only 5-9%
        # on pointer chasers, while ideal speculation is large.
        assert b < 1.15
        assert e > d
