"""Future-work bench: better load-address predictors (paper Section 5.2
closing question)."""

from conftest import once

from repro.experiments import predictor_comparison
from repro.workloads import POINTER_CHASING


def test_predictor_comparison(benchmark, runner):
    exhibit = once(benchmark, lambda: predictor_comparison(runner,
                                                           width=16))
    print("\n" + exhibit.render())
    rows = exhibit.row_map()
    two_delta = exhibit.headers.index("two-delta")
    hybrid = exhibit.headers.index("hybrid")
    ideal = exhibit.headers.index("ideal (E)")
    for name, row in rows.items():
        # The hybrid never loses much to the paper's two-delta, and the
        # ideal configuration bounds all realistic predictors.
        assert row[hybrid] >= row[two_delta] - 0.08
        assert row[ideal] >= max(row[two_delta], row[hybrid]) - 0.05
    # On at least one pointer chaser the correlation-based predictor
    # closes part of the two-delta -> ideal gap (the paper's hypothesis).
    gains = [rows[name][hybrid] - rows[name][two_delta]
             for name in POINTER_CHASING]
    assert max(gains) > 0.02
