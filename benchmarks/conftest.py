"""Shared fixtures for the benchmark harness.

The harness regenerates every table and figure of the paper.  Benchmarks
share one memoised :class:`ExperimentRunner` so the full harness costs
each (workload, config, width) simulation once; the throughput benches
construct fresh schedulers to measure raw simulation speed.

Scale defaults to 0.08 (seconds per exhibit); set ``REPRO_BENCH_SCALE``
to run the harness at reproduction scale.  The EXPERIMENTS.md numbers are
produced separately by ``python -m repro.experiments.report 1.0``.
"""

import os

import pytest

from repro.core.config import PAPER_ISSUE_WIDTHS
from repro.experiments import ExperimentRunner

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.08"))


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner(scale=BENCH_SCALE, widths=PAPER_ISSUE_WIDTHS)


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark clock.

    Exhibit generation is dominated by trace simulation; multiple rounds
    would only measure the memoisation cache.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
