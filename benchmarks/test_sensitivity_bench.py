"""Bench: trace-length sensitivity of the headline metrics.

Validates DESIGN.md's substitution claim — the reported rates must be
stable across workload scales, otherwise the short-trace substitution
would not be sound.
"""

from conftest import BENCH_SCALE, once

from repro.experiments.sensitivity import max_drift, scale_sensitivity


def test_scale_sensitivity(benchmark):
    scales = (BENCH_SCALE, 2 * BENCH_SCALE, 4 * BENCH_SCALE)

    def sweep():
        return {name: scale_sensitivity(name, scales=scales, width=16)
                for name in ("eqntott", "ijpeg", "li")}

    exhibits = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, exhibit in exhibits.items():
        print("\n" + exhibit.render())
        # Collapsed fraction and branch accuracy are rates: drift across
        # a 4x length change stays modest for loop-dominated kernels.
        assert max_drift(exhibit, "collapsed (%)") < 0.35, name
        assert max_drift(exhibit, "branch acc (%)") < 0.35, name
