"""Ablation bench: window size relative to issue width.

The paper fixes window = 2x issue width; this bench quantifies what 1x
and 4x windows do to the base machine and to configuration D, showing
how collapsing interacts with lookahead (collapsing needs producer and
consumer co-resident in the window).
"""

import pytest

from repro.collapse import CollapseRules
from repro.core import MachineConfig, branch_outcomes
from repro.core.scheduler import WindowScheduler
from repro.core.simulator import load_outcomes
from repro.metrics import harmonic_mean, render_table
from repro.workloads import suite_traces

SCALE = 0.06
WIDTH = 16


@pytest.fixture(scope="module")
def prepared():
    traces = suite_traces(scale=SCALE)
    return [(trace, branch_outcomes(trace), load_outcomes(trace))
            for trace in traces]


def _mean(prepared, factor, collapse):
    rules = CollapseRules.paper() if collapse else None
    config = MachineConfig(WIDTH, window_size=factor * WIDTH,
                           collapse_rules=rules,
                           load_spec="real" if collapse else "none")
    ipcs = []
    collapsed = []
    for trace, branch, loads in prepared:
        prediction = loads if collapse else None
        result = WindowScheduler(trace, config, branch, prediction).run()
        ipcs.append(result.ipc)
        collapsed.append(result.collapse.collapsed_fraction)
    return harmonic_mean(ipcs), sum(collapsed) / len(collapsed)


def test_window_scaling(benchmark, prepared):
    factors = (1, 2, 4)

    def sweep():
        return {
            (factor, collapse): _mean(prepared, factor, collapse)
            for factor in factors for collapse in (False, True)
        }

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for factor in factors:
        base_ipc, _ = outcome[(factor, False)]
        d_ipc, frac = outcome[(factor, True)]
        rows.append(["%dx" % factor, base_ipc, d_ipc,
                     d_ipc / base_ipc, 100 * frac])
    print("\n" + render_table(
        ["window", "base IPC", "D IPC", "D speedup", "collapsed (%)"],
        rows, title="window-size ablation (width %d)" % WIDTH))
    # Bigger windows help the base machine monotonically...
    bases = [outcome[(f, False)][0] for f in factors]
    assert bases[0] <= bases[1] <= bases[2] * 1.001
    # ...and give the collapser more co-residency to work with.
    fractions = [outcome[(f, True)][1] for f in factors]
    assert fractions[0] <= fractions[2] + 0.01
