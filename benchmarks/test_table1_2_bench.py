"""Benches regenerating the paper's Tables 1 and 2."""

from conftest import once

from repro.experiments import table1, table2


def test_table1_benchmark_characteristics(benchmark, runner):
    exhibit = once(benchmark, lambda: table1(runner))
    print("\n" + exhibit.render())
    names = [row[0] for row in exhibit.rows]
    assert names == ["compress", "espresso", "eqntott", "li", "go",
                     "ijpeg"]
    assert all(row[1] > 1000 for row in exhibit.rows)


def test_table2_branch_characteristics(benchmark, runner):
    exhibit = once(benchmark, lambda: table2(runner))
    print("\n" + exhibit.render())
    rows = exhibit.row_map()
    # Paper shape: li is among the best-predicted benchmarks and go among
    # the worst (our eqntott sorts *random* data, so unlike the paper's
    # structured input its partition branches also predict poorly).
    accuracies = {name: row[2] for name, row in rows.items()}
    assert accuracies["go"] <= sorted(accuracies.values())[1]
    assert accuracies["li"] >= 95.0
