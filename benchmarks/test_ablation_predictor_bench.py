"""Ablation benches for the load-address predictor design choices.

Two knobs the paper fixes and we vary:

- confidence policy: the paper's +1/-2 with use-threshold >1, vs
  always-use (no confidence) and vs a symmetric +1/-1 policy;
- stride policy: two-delta (promote a stride only when seen twice) vs
  last-stride.
"""

import pytest

from repro.addrpred import LastStrideTable, TwoDeltaTable, \
    run_address_predictor
from repro.core import MachineConfig, branch_outcomes
from repro.core.scheduler import WindowScheduler
from repro.metrics import harmonic_mean, render_table
from repro.workloads import suite_traces

SCALE = 0.06
WIDTH = 16


@pytest.fixture(scope="module")
def prepared():
    traces = suite_traces(scale=SCALE)
    return [(trace, branch_outcomes(trace)) for trace in traces]


def _mean_ipc_with_table(prepared, table_factory):
    config = MachineConfig(WIDTH, load_spec="real")
    ipcs = []
    mispredicted_used = 0
    used = 0
    for trace, branch in prepared:
        prediction = run_address_predictor(trace, table_factory())
        result = WindowScheduler(trace, config, branch, prediction).run()
        ipcs.append(result.ipc)
        counts = result.loads.counts
        used += counts["predicted_correctly"] + \
            counts["predicted_incorrectly"]
        mispredicted_used += counts["predicted_incorrectly"]
    wrong_rate = mispredicted_used / used if used else 0.0
    return harmonic_mean(ipcs), wrong_rate


def test_confidence_policy_ablation(benchmark, prepared):
    policies = {
        "paper (+1/-2, use>1)": lambda: TwoDeltaTable(),
        "always-use": lambda: TwoDeltaTable(confidence_threshold=0),
        "symmetric (+1/-1)": lambda: TwoDeltaTable(wrong_penalty=1),
    }

    def sweep():
        return {label: _mean_ipc_with_table(prepared, factory)
                for label, factory in policies.items()}

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[label, ipc, 100 * wrong]
            for label, (ipc, wrong) in outcome.items()]
    print("\n" + render_table(
        ["confidence policy", "hmean IPC", "wrong among used (%)"],
        rows, title="confidence ablation (width %d)" % WIDTH))
    # The paper's counter must filter mispredictions: the fraction of
    # *used* predictions that are wrong is far lower than always-use.
    paper_wrong = outcome["paper (+1/-2, use>1)"][1]
    always_wrong = outcome["always-use"][1]
    assert paper_wrong < always_wrong


def test_stride_policy_ablation(benchmark, prepared):
    def sweep():
        return {
            "two-delta": _mean_ipc_with_table(prepared, TwoDeltaTable),
            "last-stride": _mean_ipc_with_table(prepared,
                                                LastStrideTable),
        }

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[label, ipc, 100 * wrong]
            for label, (ipc, wrong) in outcome.items()]
    print("\n" + render_table(
        ["stride policy", "hmean IPC", "wrong among used (%)"],
        rows, title="stride ablation (width %d)" % WIDTH))
    assert outcome["two-delta"][0] > 0
    assert outcome["last-stride"][0] > 0
