"""Parallel engine and disk-cache benches.

Three timings of the same 2-workload grid: serial, fanned over a
process pool, and served from a warm disk cache.  The warm run must be
dramatically cheaper than either cold run; the pool run is asserted
identical, not faster, because CI machines may have a single core.
"""

import pytest

from conftest import BENCH_SCALE, once

from repro.experiments.parallel import run_cells

CELLS = [(name, letter, width)
         for name in ("eqntott", "ijpeg")
         for letter in ("A", "D")
         for width in (8, 16)]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("bench-cache"))


def test_grid_serial(benchmark):
    results, profile = once(
        benchmark, lambda: run_cells(CELLS, BENCH_SCALE, jobs=1))
    assert len(results) == len(CELLS)
    assert all(r.cycles > 0 for r in results)


def test_grid_process_pool(benchmark):
    def run():
        return run_cells(CELLS, BENCH_SCALE, jobs=4)

    results, profile = once(benchmark, run)
    serial, _ = run_cells(CELLS, BENCH_SCALE, jobs=1)
    assert [(r.trace_name, r.config_name, r.cycles) for r in results] == \
        [(r.trace_name, r.config_name, r.cycles) for r in serial]


def test_grid_warm_cache(benchmark, cache_dir):
    cold, _ = run_cells(CELLS, BENCH_SCALE, jobs=2, cache_dir=cache_dir)

    def warm():
        return run_cells(CELLS, BENCH_SCALE, jobs=2, cache_dir=cache_dir)

    results, profile = once(benchmark, warm)
    assert profile.hits == len(CELLS)
    assert [r.cycles for r in results] == [r.cycles for r in cold]


def test_warm_cache_without_pool(benchmark, cache_dir):
    run_cells(CELLS, BENCH_SCALE, jobs=1, cache_dir=cache_dir)

    def warm():
        return run_cells(CELLS, BENCH_SCALE, jobs=1, cache_dir=cache_dir)

    results, profile = once(benchmark, warm)
    assert profile.hits == len(CELLS)
    assert len(results) == len(CELLS)
