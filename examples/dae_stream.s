! dae_stream.s — access/execute slicing of two loops
! (`repro lint --dae`, docs/LINT.md "Access/execute loop slicing").
!
!   PYTHONPATH=src python -m repro lint examples/dae_stream.s --dae
!
! Two innermost loops with opposite fates on a decoupled machine:
!
! * `sum` streams an array.  The load's backward address cone holds
!   only the induction update `add %o0, 4, %o0` — no load — so the
!   loop is CLEAN: the access slice (cone + load) may run arbitrarily
!   far ahead, handing values to the execute slice (`add %o1, %o3`)
!   through a bounded FIFO queue.  The load's value leaves the slice,
!   making it the loop's one boundary load.
!
! * `chase` walks a linked list: `ld [%o4], %o4` sits in its own
!   address cone.  The loop is CHASE-POISONED — decoupling it would
!   only move the pointer-chase stall into the access stream, so a
!   configuration-H machine keeps it coupled (and counts its dynamic
!   chase dependences, which the clean loop must show zero of:
!   `repro lint --dae-check`).
!
! Expected `--dae` table:
!
!   line | body | loads | verdict        | access | frac | boundary | recMII acc | recMII body | depth | note
!   -----+------+-------+----------------+--------+------+----------+------------+-------------+-------+---------------------------------
!     36 |    5 |     1 |          clean |      2 |  40% |        1 |          1 |           1 |     3 | -
!     43 |    3 |     1 | chase-poisoned |      1 |  33% |        0 |          - |           - |     - | load-derived address via load #12

        .equ N, 16
        .equ LAPS, 8
        .text
main:
        mov     N, %g1              ! stream-loop counter
        set     array, %o0          ! stream cursor (access slice)
        mov     0, %o1              ! running sum (execute slice)
sum:    ld      [%o0], %o3          ! boundary load: value exits slice
        add     %o1, %o3, %o1      ! execute: consume via the queue
        add     %o0, 4, %o0         ! access: the whole address cone
        subcc   %g1, 1, %g1
        bne     sum
        set     head, %o4           ! list cursor (follows memory)
        mov     LAPS, %g2           ! chase-loop counter
chase:  ld      [%o4], %o4          ! next pointer: load in own cone
        subcc   %g2, 1, %g2
        bne     chase
        set     result, %o5
        st      %o1, [%o5]
        halt

! The list is circular (n8 -> n1) so a fixed lap count never reaches a
! null pointer.
        .data
array:  .word   3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
head:   .word   n4
n1:     .word   n6
n2:     .word   n7
n3:     .word   n1
n4:     .word   n3
n5:     .word   n8
n6:     .word   n2
n7:     .word   n5
n8:     .word   n1
result: .word   0
