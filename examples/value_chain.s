! value_chain.s — which recurrences result-value speculation breaks
! (`repro lint --value --recur`, docs/LINT.md "Result-value classes").
!
!   PYTHONPATH=src python -m repro lint examples/value_chain.s --value --recur
!   PYTHONPATH=src python examples/value_study.py
!
! Two innermost loops with opposite fates under configuration I
! (C + stride value prediction with squash/replay, docs/MODEL.md):
!
! * `spill` keeps its counter IN MEMORY — the classic spilled
!   induction variable.  Each lap loads the count, increments it and
!   stores it back: ld(2) -> add(1) -> st(1) -> carried mem arc, a
!   4-cycle recurrence that neither collapsing (loads are not
!   collapsible producers) nor address speculation (the aliasing store
!   is a true dependence) touches: recMII 4 in A, C and E.  But the
!   *values* the load returns walk a perfect stride of 1, so the
!   two-delta value table locks on after warmup and config I's bypass
!   hands each lap's count to the add before the load even issues —
!   variant V cuts the load's out-arc and the cycle dissolves (no
!   recurrence binds V; its ceiling column reads "inf").
!
! * `chase` walks a shuffled circular list.  The pointer values repeat
!   with a long period and no constant stride, so the confidence gate
!   never opens: config I leaves the carried 2-cycle load recurrence
!   exactly where machines A, C and E left it.  Variant V's *static*
!   ceiling still cuts the arc (any load is a candidate), which is the
!   gap the `--value-check` coverage caps account for: the static bound
!   stays sound, the achieved IPC shows which loads delivered.
!
! The chase loop also reloads a never-written cell each lap: an
! `invariant`-class load (address fixed, every in-loop store proved
! disjoint — there are none), the one class whose steady-state
! prediction the cross-check pins exactly.

        .equ SPILL_LAPS, 16
        .equ CHASE_LAPS, 24
        .text
main:
        set     count, %g4          ! the spilled counter's home
        mov     SPILL_LAPS, %g1
spill:  ld      [%g4], %o1          ! load the counter (values stride 1)
        add     %o1, 1, %o1         ! bump it
        st      %o1, [%g4]          ! spill it back: carried through memory
        subcc   %g1, 1, %g1
        bne     spill
        set     head, %o0           ! list cursor (follows memory)
        set     bias, %g5           ! never-written cell
        mov     CHASE_LAPS, %g2
        mov     0, %o5
chase:  ld      [%o0], %o0          ! next pointer: no value stride
        ld      [%g5], %o4          ! invariant-class load
        add     %o5, %o4, %o5       ! accumulate the bias
        subcc   %g2, 1, %g2
        bne     chase
        set     result, %o3
        st      %o5, [%o3]
        halt

! The list is circular (n8 -> n1) and shuffled so the pointer value
! stream never settles into a stride, as in recurrence_chain.s.
        .data
count:  .word   0
bias:   .word   5
head:   .word   n4
n1:     .word   n6
n2:     .word   n7
n3:     .word   n1
n4:     .word   n3
n5:     .word   n8
n6:     .word   n2
n7:     .word   n5
n8:     .word   n1
result: .word   0
