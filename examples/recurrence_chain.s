! recurrence_chain.s — the two faces of a loop recurrence
! (`repro lint --recur`, docs/LINT.md "Loop-recurrence bounds").
!
!   PYTHONPATH=src python -m repro lint examples/recurrence_chain.s --recur
!
! Two innermost loops with opposite fates under the paper's machines:
!
! * `acc` carries its sum through TWO dependent adds — a 2-cycle
!   recurrence on machine A (recMII 2, at most body/recMII = 2.0 IPC).
!   Both links are collapsible ALU arcs, so configuration C's group
!   merge dissolves the cycle entirely: no static cycle survives and
!   the collapsed recMII drops to 0 (ceiling "inf" = this loop no
!   longer bounds the machine).
!
! * `chase` walks a circular linked list: `ld [%o0], %o0` feeds its own
!   address, a carried 2-cycle *load* recurrence.  Loads are not
!   collapsible producers, and a chase-class address is exactly what
!   d-speculation cannot predict — so recMII stays 2 in A, C *and* E.
!   Restructuring helps the accumulator; nothing helps the chase.
!
! Expected `--recur` table (line/body/nodes/cycles, recMII and IPC
! ceiling per variant):
!
!   line | body | nodes | cycles | recMII A | recMII C | recMII E | ceil A | ceil C | ceil E | note
!   -----+------+-------+--------+----------+----------+----------+--------+--------+--------+-----
!     35 |    4 |     4 |      2 |        2 |        0 |        0 |    2.0 |    inf |    inf |    -
!     41 |    3 |     3 |      2 |        2 |        2 |        2 |    1.5 |    1.5 |    1.5 |    -

        .equ N, 16
        .equ LAPS, 8
        .text
main:
        mov     N, %g1              ! accumulator-loop counter
        mov     0, %o1              ! running sum
acc:    add     %o1, 3, %o1         ! first link of the carried chain
        add     %o1, 1, %o1         ! second link: 2 cycles per lap (A)
        subcc   %g1, 1, %g1
        bne     acc
        set     head, %o0           ! list cursor (follows memory)
        mov     LAPS, %g2           ! chase-loop counter
chase:  ld      [%o0], %o0          ! next pointer: load feeds address
        subcc   %g2, 1, %g2
        bne     chase
        set     result, %o3
        st      %o1, [%o3]
        halt

! The list is circular (n8 -> n1) so a fixed lap count never reaches a
! null pointer; the walk order is shuffled to keep the address stream
! irregular, as in pointer_chase.s.
        .data
head:   .word   n4
n1:     .word   n6
n2:     .word   n7
n3:     .word   n1
n4:     .word   n3
n5:     .word   n8
n6:     .word   n2
n7:     .word   n5
n8:     .word   n1
result: .word   0
