"""Beyond the paper: node elimination and load-value speculation.

The paper sketches both ideas (Figure 1.f and Figure 1.d) without
simulating them.  This example measures what they would have added on top
of configuration D:

- node elimination removes collapsed producers whose value nobody else
  needs — it frees issue slots, so it pays most at narrow widths;
- last-value prediction for loads attacks exactly the dependences that
  stride prediction cannot (the paper's "future research" direction for
  pointer chasers), but only where values repeat.

Run:  python examples/extensions_study.py [scale]
"""

import sys

from repro.core import branch_outcomes, load_outcomes, value_outcomes
from repro.core.config import MachineConfig
from repro.core.scheduler import WindowScheduler
from repro.collapse import CollapseRules
from repro.metrics import render_table
from repro.workloads import cached_trace, SUITE

WIDTH = 8


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    rows = []
    for workload in SUITE:
        trace = cached_trace(workload.name, scale)
        branch = branch_outcomes(trace)
        loads = load_outcomes(trace)
        values = value_outcomes(trace)

        def run(elim=False, vspec=False):
            config = MachineConfig(
                WIDTH, collapse_rules=CollapseRules.paper(),
                load_spec="real", node_elimination=elim,
                value_spec=vspec)
            return WindowScheduler(trace, config, branch, loads,
                                   values if vspec else None).run()

        d = run()
        elim = run(elim=True)
        vspec = run(vspec=True)
        rows.append([
            workload.name,
            d.ipc,
            elim.ipc,
            vspec.ipc,
            100.0 * elim.collapse.eliminated / max(1, len(trace)),
            100.0 * values.raw_accuracy,
        ])
    print(render_table(
        ["workload", "D IPC", "+elim IPC", "+vspec IPC",
         "eliminated (%)", "value locality (%)"],
        rows, title="extension study (width %d, scale %.2f)"
        % (WIDTH, scale)))
    print("""
notes:
- "eliminated" instructions are collapsed producers nobody else reads
  (Figure 1.f); they free issue slots, which matters when width binds.
- "value locality" is the fraction of loads returning the same value as
  their previous dynamic instance [9]; our kernels stream fresh data, so
  locality is low and value speculation adds little -- matching why the
  paper left it to future work.
""")


if __name__ == "__main__":
    main()
