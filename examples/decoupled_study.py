"""Worked example: decoupled access/execute streams (configuration H).

The slicer (`repro.lint.dae`, docs/LINT.md) proves dae_stream.s's
stream loop CLEAN — its loads' address cones contain no load — and its
list walk CHASE-POISONED, *before running anything*.  This script then
simulates the kernel on configuration A and on configuration H (fed
the derived `DAEPlan`) under window pressure, shows the clean loop's
access slice bypassing the full window through its bounded FIFO queue,
and runs the slice<->occupancy cross-check: zero dynamic chase
dependences on the clean loop, peak queue occupancy within the static
depth bound.

Run:  python examples/decoupled_study.py
"""

import os

from repro.asm import assemble
from repro.core import MachineConfig, simulate_trace
from repro.emu import trace_program
from repro.lint import DAEAnalysis, dae_cross_check
from repro.metrics import render_table

EXAMPLES = os.path.dirname(os.path.abspath(__file__))


def main():
    with open(os.path.join(EXAMPLES, "dae_stream.s")) as handle:
        program = assemble(handle.read())

    # -- static half: slice every innermost loop -----------------------
    analysis = DAEAnalysis(program)
    print(render_table(
        ["line", "body", "loads", "verdict", "access", "frac",
         "boundary", "recMII acc", "recMII body", "depth", "note"],
        analysis.summary_rows(),
        title="dae_stream.s — access/execute slices"))
    plan = analysis.plan()
    print("plan: %d clean loop(s), total queue depth %d"
          % (len(plan.clean), sum(plan.capacity.values())))
    print()

    # -- dynamic half: A vs H under window pressure --------------------
    trace, _, _ = trace_program(program, name="dae_stream")
    width = 4
    window = 4          # tight: the execute stream clogs it
    base = simulate_trace(
        trace, MachineConfig(width, window_size=window, name="A"))
    dae = simulate_trace(
        trace, MachineConfig(width, window_size=window, dae=True,
                             name="H"),
        sanitize=True, dae_plan=plan)

    print("width %d, window %d:" % (width, window))
    print("  A: %6.3f IPC" % (base.ipc,))
    print("  H: %6.3f IPC (%.3fx), %d access ops bypassed a full "
          "window" % (dae.ipc, dae.speedup_over(base),
                      dae.dae.bypassed))
    for header, stats in sorted(dae.dae.loops.items()):
        print("  loop #%-3d enqueued %d, popped %d, peak queue %d, "
              "full stalls %d, chase deps %d"
              % (header, stats.enqueued, stats.popped, stats.peak,
                 stats.full_stalls, stats.chase_deps))
    print()

    # -- the proof: static slices vs dynamic occupancy -----------------
    check = dae_cross_check(analysis, trace, dae)
    print("cross-check: %s (%d loops: %d clean, %d poisoned; peak %d "
          "within bound %d; %d chase deps, all on coupled loops)"
          % ("ok" if check.ok else "FAILED", check.loops_checked,
             check.clean_loops, check.poisoned_loops, check.peak,
             sum(plan.capacity.values()), check.chase_deps))
    assert check.ok, check.violations
    assert dae.ipc >= base.ipc


if __name__ == "__main__":
    main()
