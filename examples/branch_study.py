"""Worked example: load-driven exit-branch prediction (config J).

The branchflow pass (`repro.lint.branchflow`, docs/LINT.md) classifies
every conditional branch of exit_branch.s and proves, *before running
anything*, that the array-scan loop's exit is governed by a single
stride-classified load — so configuration J (I + load-driven
exit-branch prediction) can resolve it at the load's
address-generation time — while the list walk's exit is governed by a
pointer-chasing load the plan must exclude: that exit is
data-dependent in a way no load-driven predictor can see coming.

The script shows the static classification table, the derived
:class:`BranchPlan`, an I-vs-J simulation where the planned exit's
misprediction fence is waived, and the soundness chain the
cross-check proves: static accuracy ceiling >= measured combining
accuracy >= config-J early-resolution coverage.

Run:  python examples/branch_study.py
"""

import os

from repro.asm import assemble
from repro.core.config import paper_config
from repro.core.simulator import simulate_trace
from repro.emu import trace_program
from repro.lint import BranchFlowAnalysis, branchflow_cross_check
from repro.metrics import render_table

EXAMPLES = os.path.dirname(os.path.abspath(__file__))


def main():
    with open(os.path.join(EXAMPLES, "exit_branch.s")) as handle:
        program = assemble(handle.read())

    # -- static half: classify every conditional branch ----------------
    analysis = BranchFlowAnalysis(program)
    print(render_table(
        ["index", "line", "class", "trip", "period", "exit", "load",
         "note"],
        analysis.summary_rows(),
        title="exit_branch.s — branch predictability"))
    plan = analysis.plan()
    print("plan: %d load-driven exit branch(es): %r"
          % (len(plan.resolves), plan.resolves))
    assert len(plan.resolves) == 1, \
        "only the stride-governed scan exit is resolvable"
    print()

    # -- dynamic half: I vs J ------------------------------------------
    trace, _, _ = trace_program(program, name="exit_branch")
    width = 2
    base = simulate_trace(trace, paper_config("I", width))
    ldbp = simulate_trace(trace, paper_config("J", width),
                          branch_plan=plan, sanitize=True)
    bspec = ldbp.branch_spec
    print("width %d:" % (width,))
    print("  I: %4d cycles (%5.3f IPC)" % (base.cycles, base.ipc))
    print("  J: %4d cycles (%5.3f IPC), %d/%d planned-exit "
          "mispredictions resolved at address-generation time"
          % (ldbp.cycles, ldbp.ipc, bspec.early_resolved,
             bspec.early_resolved + bspec.missed))
    assert ldbp.cycles <= base.cycles
    # The warm final exit resolves early (the governing load's stride
    # value prediction is confident and correct); the cold first-lap
    # misprediction cannot — and the chase loop's exit never appears
    # in the stats at all, because the plan excludes it.
    assert bspec.early_resolved >= 1
    print()

    # -- the proof: the soundness chain --------------------------------
    check = branchflow_cross_check(analysis, trace, widest=width)
    print("cross-check: %s (%d sites, %d trip floors; ceiling %.4f >= "
          "accuracy %.4f >= early coverage %.4f)"
          % ("ok" if check.ok else "FAILED", check.sites,
             check.floors_checked, check.ceiling, check.accuracy,
             check.early_coverage))
    assert check.ok, check.violations


if __name__ == "__main__":
    main()
