"""The paper's closing question, answered.

Section 5.2: "It is of interest, therefore, as a future research topic to
investigate load-speculation mechanisms that can provide satisfactory
performance for both non-pointer and pointer chasing benchmarks."

This example swaps the load-speculation table of configuration D between:

- the paper's two-delta stride predictor,
- a Markov correlation predictor keyed by (PC, last address), which
  learns linked-structure traversals,
- a hybrid of the two with a McFarling-style chooser,

and compares each against the ideal bound (configuration E).

Run:  python examples/future_predictors.py [scale] [width]
"""

import sys

from repro.experiments import ExperimentRunner, predictor_comparison


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    runner = ExperimentRunner(scale=scale, widths=(width,))
    exhibit = predictor_comparison(runner, width=width)
    print(exhibit.render())
    print("""
reading guide:
- on li (assoc-list walks) the stride table is blind (the paper's
  Table 3 story) while the correlation table learns the list after one
  traversal and recovers most of the ideal-speculation speedup;
- on strided codes (ijpeg) the correlation table is weaker alone but the
  hybrid keeps the stride table's accuracy: one mechanism for both
  worlds, which is what the paper asked for.
""")


if __name__ == "__main__":
    main()
