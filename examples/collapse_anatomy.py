"""Anatomy of collapsing on a real workload (Figures 8-10, Tables 5-6).

Shows, for one workload and one machine, what actually collapses: the
category split (3-1 / 4-1 / 0-op), the distance histogram, and the most
frequent pair and triple operation sequences.

Run:  python examples/collapse_anatomy.py [workload] [width] [scale]
"""

import sys

from repro.core import config_d, simulate_trace
from repro.metrics import render_bar_chart, render_table
from repro.workloads import cached_trace


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "espresso"
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    scale = float(sys.argv[3]) if len(sys.argv) > 3 else 0.15

    trace = cached_trace(name, scale)
    result = simulate_trace(trace, config_d(width))
    stats = result.collapse

    print("%s @ width %d: IPC %.2f, %d collapse events, "
          "%.0f%% of instructions collapsed\n"
          % (name, width, result.ipc, stats.events,
             100 * stats.collapsed_fraction))

    fractions = stats.category_fractions()
    print(render_bar_chart(
        [(category, 100 * share) for category, share in fractions.items()],
        title="mechanism contribution (%)"))
    print()

    histogram = sorted(stats.distance_histogram().items(),
                       key=lambda kv: (len(kv[0]), kv[0]))
    print(render_bar_chart([(k, 100 * v) for k, v in histogram],
                           title="producer->consumer distance (%)"))
    print()

    pair_rows = [[" - ".join(sigs), 100 * share]
                 for sigs, share in stats.top_pairs(10)]
    print(render_table(["pair", "share (%)"], pair_rows,
                       title="top collapsed pairs (Table 5 analogue)"))
    print()
    triple_rows = [[" - ".join(sigs), 100 * share]
                   for sigs, share in stats.top_triples(10)]
    print(render_table(["triple", "share (%)"], triple_rows,
                       title="top collapsed triples (Table 6 analogue)"))


if __name__ == "__main__":
    main()
