"""Bring your own kernel: write assembly, validate it, sweep collapse
rules.

This example defines a saxpy-like kernel from scratch, checks the
emulator's answer against Python, and then runs the collapsing-rule
ablations of DESIGN.md Section 6 on it: pairs-only, consecutive-only,
no zero detection, and the full paper model.

Run:  python examples/custom_workload.py
"""

from repro import CollapseRules, MachineConfig, simulate_trace
from repro.asm import assemble
from repro.emu import trace_program
from repro.metrics import render_table

N = 256
A_CONST = 7

SOURCE = """
        .equ N, {n}
        .text
main:
        set     x, %o0
        set     y, %o1
        mov     0, %l0
loop:
        sll     %l0, 2, %l1         ! i * 4
        ld      [%o0 + %l1], %l2    ! x[i]
        smul    %l2, {a}, %l3       ! a * x[i]
        ld      [%o1 + %l1], %l4    ! y[i]
        add     %l3, %l4, %l5
        st      %l5, [%o1 + %l1]    ! y[i] += a*x[i]
        inc     %l0
        cmp     %l0, N
        bl      loop
        halt

        .data
x:
{x_words}
y:
{y_words}
"""


def build():
    x = [(3 * i + 1) & 0xFFFF for i in range(N)]
    y = [(5 * i + 2) & 0xFFFF for i in range(N)]
    words = lambda vs: "\n".join(
        "        .word " + ", ".join(str(v) for v in vs[k:k + 8])
        for k in range(0, len(vs), 8))
    program = assemble(SOURCE.format(n=N, a=A_CONST, x_words=words(x),
                                     y_words=words(y)))
    trace, machine, _ = trace_program(program, name="saxpy")
    # Self-check against the obvious Python loop.
    base = program.symbols["y"]
    got = machine.memory.read_words(base, N)
    want = [(A_CONST * xv + yv) & 0xFFFFFFFF for xv, yv in zip(x, y)]
    assert got == want, "kernel computed the wrong answer!"
    return trace


def main():
    trace = build()
    print("saxpy validated; %d dynamic instructions" % (len(trace),))
    variants = [
        ("no collapsing", None),
        ("paper model", CollapseRules.paper()),
        ("pairs only", CollapseRules.pairs_only()),
        ("consecutive only", CollapseRules.consecutive_only()),
        ("within basic block", CollapseRules.within_block_only()),
        ("no zero detection", CollapseRules.no_zero_detection()),
    ]
    rows = []
    for label, rules in variants:
        config = MachineConfig(8, collapse_rules=rules, name=label)
        result = simulate_trace(trace, config)
        rows.append([label, result.ipc, result.collapse.events,
                     100 * result.collapse.collapsed_fraction])
    print(render_table(
        ["collapse rules", "IPC", "events", "instructions collapsed (%)"],
        rows, title="collapsing-rule ablation on saxpy (width 8)"))


if __name__ == "__main__":
    main()
