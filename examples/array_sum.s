! array_sum.s — minimal clean kernel for `repro lint` / `repro simulate`.
!
!   PYTHONPATH=src python -m repro lint examples/array_sum.s --bounds
!
! Sums an 8-word array with a cmp/bl loop and stores the result; every
! register is initialized before use, the loop condition codes are set
! immediately before each branch, and the single exit path ends in halt
! — so the linter reports it clean.  The add/ld address chain also gives
! the static collapse-bound pass a few opportunities to report.

        .equ N, 8
        .text
main:
        set     array, %o0          ! element cursor
        mov     0, %o1              ! running sum
        mov     0, %o2              ! index
loop:
        ld      [%o0], %o3
        add     %o1, %o3, %o1
        add     %o0, 4, %o0
        inc     %o2
        cmp     %o2, N
        bl      loop
        set     result, %o4
        st      %o1, [%o4]
        halt

        .data
array:  .word   3, 1, 4, 1, 5, 9, 2, 6
result: .word   0
