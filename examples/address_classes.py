"""Worked example: static address classification vs the two-delta
predictor on a strided / pointer-chasing kernel pair.

The loop/induction-variable pass (`repro.lint.addrclass`, docs/LINT.md)
proves strided_walk.s's load is constant-stride and pointer_chase.s's
loads are load-to-load chases — *before running anything*.  This script
then traces both kernels, runs the two-delta predictor with per-PC
histograms, and shows the dynamic behaviour matching the static
verdicts: near-perfect steady accuracy and coverage on the stride load,
no confidence on the chase loads.

Run:  python examples/address_classes.py
"""

import os

from repro.addrpred import run_address_predictor
from repro.asm import assemble
from repro.emu import trace_program
from repro.lint import AddressClassification, cross_check
from repro.metrics import render_table

EXAMPLES = os.path.dirname(os.path.abspath(__file__))


def study(filename):
    with open(os.path.join(EXAMPLES, filename)) as handle:
        program = assemble(handle.read())
    classification = AddressClassification(program)
    trace, _, _ = trace_program(program, name=filename)
    result = run_address_predictor(trace, per_pc=True)
    check = cross_check(classification, trace, result)

    rows = []
    for site in classification.sites:
        stat = result.per_pc.get(site.pc)
        rows.append([
            site.line,
            site.cls,
            site.stride if site.stride is not None else "-",
            stat.count if stat else 0,
            "%.0f%%" % (100 * stat.steady_accuracy) if stat else "-",
            "%.0f%%" % (100 * stat.coverage) if stat else "-",
            stat.delta_changes if stat else "-",
        ])
    print(render_table(
        ["line", "static class", "stride", "loads", "steady acc",
         "coverage", "delta changes"],
        rows, title="%s — static claim vs dynamic behaviour"
        % (filename,)))
    print("cross-check: %s (coverage bound %.2f >= dynamic %.2f)"
          % ("ok" if check.ok else "FAILED",
             check.coverage_bound, check.dynamic_coverage))
    print()
    return check


def main():
    stride_check = study("strided_walk.s")
    chase_check = study("pointer_chase.s")
    print("the pair, side by side:")
    print("  strided_walk  : statically `stride`, dynamic coverage "
          "%.2f — the predictor locks on" % (stride_check.dynamic_coverage,))
    print("  pointer_chase : statically `chase`,  dynamic coverage "
          "%.2f — confidence never builds" % (chase_check.dynamic_coverage,))
    assert stride_check.ok and chase_check.ok


if __name__ == "__main__":
    main()
