! exit_branch.s — load-driven exit-branch prediction (configuration J)
! (`repro lint --branch`, docs/LINT.md "Branch predictability").
!
!   PYTHONPATH=src python -m repro lint examples/exit_branch.s --branch
!
! Two innermost loops whose exit branches have opposite fates under
! load-driven branch prediction (Sridhar et al.'s LDBP, PAPERS.md):
!
! * `scan` walks an array of stride-5 values until one reaches LIMIT.
!   The exit branch's condition cone terminates in a single load whose
!   address the static pass classifies `stride` — so the branchflow
!   plan maps the branch to its governing load, and configuration J
!   resolves the exit at the load's address-generation time whenever
!   the stride *value* predictor is confident and correct (which it
!   is, once warm: the values themselves stride by 5).
!
! * `chase` follows a null-terminated linked list.  Its exit branch is
!   also load-fed, but the governing load's address class is
!   pointer-chasing (`ld [%o4], %o4` feeds itself) — statically
!   unpredictable, so the plan excludes it and configuration J runs
!   the exit exactly like configuration I: the data-dependent exit
!   cannot be resolved early.
!
! Expected `--branch` classes: the `scan` exit is `exit` with a
! stride-load note, the `chase` exit is `exit` with a pointer-load
! note, and the plan holds exactly one entry (scan's).

        .equ LIMIT, 80
        .text
main:
        set     array, %o0          ! stride cursor
        mov     0, %o1              ! running sum
scan:   ld      [%o0], %o3          ! governing load: address strides,
        add     %o1, %o3, %o1      !   values stride too (5,10,15,...)
        add     %o0, 4, %o0
        cmp     %o3, LIMIT
        bl      scan                ! exit when the loaded value hits
                                    !   LIMIT: load-driven, resolvable
        set     head, %o4           ! list cursor
chase:  ld      [%o4], %o4          ! next pointer: chases itself
        tst     %o4
        bne     chase               ! exit on null: load-driven but the
                                    !   governor is pointer-chasing
        set     result, %o5
        st      %o1, [%o5]
        halt

        .data
array:  .word   5, 10, 15, 20, 25, 30, 35, 40
        .word   45, 50, 55, 60, 65, 70, 75, 80
head:   .word   n1
n1:     .word   n2
n2:     .word   n3
n3:     .word   n4
n4:     .word   n5
n5:     .word   n6
n6:     .word   n7
n7:     .word   n8
n8:     .word   0
result: .word   0
