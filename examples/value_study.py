"""Worked example: result-value speculation (configuration I).

The valueflow pass (`repro.lint.valueflow`, docs/LINT.md) classifies
value_chain.s's result producers *before running anything*: the spilled
counter's load is `load`-class (an in-loop store aliases it), the
chase-loop bias reload is `invariant`, the pointer walk is `load`.
Recurrence variant V then prices each loop's carried cycles with every
statically value-predictable arc cut: the 4-cycle memory-carried
counter recurrence dissolves (recMII V = 0) while machines A, C and E
all keep it.

The dynamic half simulates configuration C against configuration I and
shows which cut arcs the machine actually cashes in: the counter's
value stream strides by 1, the two-delta table locks on, and the
bypass collapses the spill loop; the shuffled pointer stream never
opens the confidence gate, so the chase recurrence stands.  The
valueflow cross-check then ties the halves together: per-PC re-lock
floors on the invariant load, the class-capped coverage bound, and the
chain *static V ceiling >= graph-V IPC >= simulated config-I IPC*.

Run:  python examples/value_study.py
"""

import os

from repro.asm import assemble
from repro.core import simulate_trace
from repro.core.config import paper_config
from repro.emu import trace_program
from repro.lint import (
    RecurrenceAnalysis,
    ValueFlowAnalysis,
    valueflow_cross_check,
)
from repro.metrics import render_table

EXAMPLES = os.path.dirname(os.path.abspath(__file__))


def main():
    with open(os.path.join(EXAMPLES, "value_chain.s")) as handle:
        program = assemble(handle.read())

    # -- static half: classify every result producer -------------------
    valueflow = ValueFlowAnalysis(program)
    in_loops = [row for row in valueflow.summary_rows() if row[5] > 0]
    print(render_table(
        ["index", "line", "class", "stride/k", "loop line", "depth"],
        in_loops,
        title="value_chain.s — result-value classes (loop bodies)"))
    counts = valueflow.class_counts()
    print("value classes: " + "  ".join(
        "%s %d" % (cls, n) for cls, n in counts.items() if n))
    print()

    recurrence = RecurrenceAnalysis(program, valueflow=valueflow)
    print(render_table(
        ["line", "body", "nodes", "cycles",
         "recMII A", "recMII C", "recMII E", "recMII V",
         "ceil A", "ceil C", "ceil E", "ceil V", "note"],
        [list(row) for row in recurrence.summary_rows()],
        title="loop recurrence bounds"))
    spill, chase = recurrence.loops
    assert spill.recmii("A") == spill.recmii("C") == spill.recmii("E") == 4
    # The cut dissolves the counter cycle: no recurrence binds V.
    assert spill.ipc_ceiling("V") is None
    assert chase.recmii("A") == chase.recmii("C") == chase.recmii("E") == 2
    print("spill loop: recMII 4 in A/C/E, unbound in V — only value "
          "speculation breaks a memory-carried counter")
    print()

    # -- dynamic half: C vs I ------------------------------------------
    trace, _, _ = trace_program(program, name="value_chain")
    width = 4
    base = simulate_trace(trace, paper_config("C", width))
    spec = simulate_trace(trace, paper_config("I", width), sanitize=True)
    vspec = spec.value_spec
    print("width %d:" % (width,))
    print("  C: %6.3f IPC" % (base.ipc,))
    print("  I: %6.3f IPC (%.3fx): %d bypassed, %d speculated, "
          "%d late, %d squashes, %d replays"
          % (spec.ipc, spec.speedup_over(base), vspec.bypassed,
             vspec.speculated, vspec.late, vspec.squashes,
             vspec.replays))
    assert spec.ipc > base.ipc        # the spill loop dominates
    assert vspec.replays == vspec.squashes
    print()

    # -- the proof: static claims vs dynamic behaviour ------------------
    check = valueflow_cross_check(valueflow, trace,
                                  recurrence=recurrence, widest=64)
    print("cross-check: %s (%d site(s) checked, steady accuracy %.3f; "
          "coverage %.3f within bound %.3f)"
          % ("ok" if check.ok else "FAILED", check.checked_sites,
             check.steady_accuracy, check.dynamic_coverage,
             check.coverage_bound))
    ceiling = "%.2f" % (check.static_bound,) \
        if check.static_bound is not None else "inf"
    print("variant-V chain: static ceiling %s IPC >= graph-V %.2f IPC "
          ">= simulated I %.2f IPC (width %d)"
          % (ceiling, check.graph_ipc, check.sim_ipc, check.widest))
    assert check.ok, check.violations


if __name__ == "__main__":
    main()
