"""Reproduce the paper's headline result (Figure 3) on the full suite.

"When both techniques are used with maximum issue widths of 4, 8, 16 and
32, the overall speedups in comparison to a base instruction level
parallel machine are 1.20, 1.35, 1.51 and 1.66."

Run:  python examples/paper_headline.py [scale]

Scale defaults to 0.15 (about a minute); use 1.0 for the numbers recorded
in EXPERIMENTS.md.
"""

import sys

from repro.experiments import ExperimentRunner, figure3

PAPER_D = {"4": 1.20, "8": 1.35, "16": 1.51, "32": 1.66}


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    runner = ExperimentRunner(scale=scale, widths=(4, 8, 16, 32))
    exhibit = figure3(runner)
    print(exhibit.render())
    print()
    print("paper's configuration D speedups vs. this reproduction:")
    print("%6s %8s %10s" % ("width", "paper", "measured"))
    for row in exhibit.rows:
        label, measured = row[0], row[3]
        print("%6s %8.2f %10.2f" % (label, PAPER_D[label], measured))
    print("\n(shape expectations: monotone growth with width; collapsing"
          "\n contributes the majority — compare the C and B columns)")


if __name__ == "__main__":
    main()
