! strided_walk.s — the *predictable* half of the address-class pair
! (see pointer_chase.s for the other half and address_classes.py for
! the worked comparison).
!
!   PYTHONPATH=src python -m repro lint examples/strided_walk.s --addr
!
! Sums the even-indexed words of a 16-word table.  The cursor %o0 is a
! basic induction variable (one `add %o0, 8, %o0` per iteration), so
! the loop load classifies as `stride` with stride 8 and the two-delta
! predictor covers it almost perfectly after warmup.

        .equ N, 32
        .text
main:
        set     table, %o0          ! element cursor (basic IV)
        mov     0, %o1              ! running sum
        mov     0, %o2              ! index
loop:
        ld      [%o0], %o3          ! even elements only
        add     %o1, %o3, %o1
        add     %o0, 8, %o0         ! stride 8: skip the odd words
        inc     %o2
        cmp     %o2, N
        bl      loop
        set     result, %o4
        st      %o1, [%o4]
        halt

        .data
table:  .word   3, 0, 1, 0, 4, 0, 1, 0, 5, 0, 9, 0, 2, 0, 6, 0
        .word   5, 0, 3, 0, 5, 0, 8, 0, 9, 0, 7, 0, 9, 0, 3, 0
        .word   2, 0, 3, 0, 8, 0, 4, 0, 6, 0, 2, 0, 6, 0, 4, 0
        .word   3, 0, 3, 0, 8, 0, 3, 0, 2, 0, 7, 0, 9, 0, 5, 0
result: .word   0
