"""Quickstart: assemble a kernel, trace it, and measure both paper
mechanisms on it.

Run:  python examples/quickstart.py
"""

from repro import CollapseRules, MachineConfig, simulate_many
from repro.asm import assemble
from repro.emu import trace_program

# A small kernel with the two dependence patterns the paper targets:
# an address-generation chain feeding loads (speculation territory) and
# short arithmetic chains (collapsing territory).
SOURCE = """
        .text
main:
        set     table, %o0
        mov     0, %l0              ! i
        mov     0, %l1              ! acc
loop:
        add     %l0, %l0, %l2       ! 2i          (collapsible chain)
        add     %l2, 1, %l3         ! 2i + 1
        sll     %l3, 2, %l4         ! (2i+1) * 4  (address generation)
        ld      [%o0 + %l4], %l5    ! table[2i+1]
        add     %l1, %l5, %l1       ! acc += ...
        inc     %l0
        cmp     %l0, 64
        bl      loop
        set     result, %o1
        st      %l1, [%o1]
        halt

        .data
table:  .space  1024
result: .word   0
"""


def main():
    program = assemble(SOURCE)
    trace, machine, _ = trace_program(program, name="quickstart")
    print("traced %d dynamic instructions" % (len(trace),))

    configs = [
        MachineConfig(8, name="base"),
        MachineConfig(8, load_spec="real", name="+load-speculation"),
        MachineConfig(8, collapse_rules=CollapseRules.paper(),
                      name="+collapsing"),
        MachineConfig(8, collapse_rules=CollapseRules.paper(),
                      load_spec="real", name="+both"),
    ]
    results = simulate_many(trace, configs)
    base = results[0]
    print("\n%-20s %8s %8s %9s" % ("machine", "cycles", "IPC", "speedup"))
    for result in results:
        print("%-20s %8d %8.2f %8.2fx"
              % (result.config_name, result.cycles, result.ipc,
                 result.speedup_over(base)))

    both = results[-1]
    print("\nload categories:", both.loads.counts)
    print("collapse events: %d (%.0f%% of instructions participate)"
          % (both.collapse.events,
             100 * both.collapse.collapsed_fraction))


if __name__ == "__main__":
    main()
