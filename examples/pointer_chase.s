! pointer_chase.s — the *unpredictable* half of the address-class pair
! (see strided_walk.s for the other half and address_classes.py for
! the worked comparison).
!
!   PYTHONPATH=src python -m repro lint examples/pointer_chase.s --addr
!
! Walks a statically-linked list summing node values.  Both loads take
! their address from the previous iteration's load result (%o0 <- [%o0])
! — the load-to-load address dependence of Section 4's pointer-chasing
! benchmarks — so they classify as `chase`: no induction variable
! exists and the two-delta predictor cannot build confidence on the
! address stream.

        .equ PASSES, 4
        .text
main:
        mov     PASSES, %o4         ! walk the list several times
        mov     0, %o1              ! running sum
pass:
        set     head, %o0           ! node cursor (follows memory)
walk:
        ld      [%o0 + 4], %o2      ! node value
        add     %o1, %o2, %o1
        ld      [%o0], %o0          ! next pointer: load feeds address
        cmp     %o0, 0
        bne     walk
        subcc   %o4, 1, %o4
        bne     pass
        set     result, %o3
        st      %o1, [%o3]
        halt

! Each node is [next, value]; the chain is laid out in a deliberately
! shuffled order so even the *memory* order of the walk is irregular.
        .data
head:   .word   n4, 3
n1:     .word   n6, 1
n2:     .word   n7, 4
n3:     .word   n1, 1
n4:     .word   n3, 5
n5:     .word   0, 9
n6:     .word   n2, 2
n7:     .word   n5, 6
result: .word   0
