"""The pointer-chasing story (Section 5.2, Figures 4-7, Tables 3-4).

Stride-based load speculation is nearly useless for pointer-chasing codes
(li, go) and effective for regular codes (compress, espresso, eqntott,
ijpeg).  This example measures both subsets side by side and prints the
per-load category breakdown that explains why.

Run:  python examples/pointer_chasing_study.py [scale]
"""

import sys

from repro.core import LOAD_CATEGORIES, config_a, config_b, config_d, \
    config_e, simulate_many
from repro.metrics import render_table
from repro.workloads import POINTER_CHASING, NON_POINTER_CHASING, \
    cached_trace

WIDTH = 16


def study(names, scale):
    rows = []
    for name in names:
        trace = cached_trace(name, scale)
        a, b, d, e = simulate_many(
            trace, [config_a(WIDTH), config_b(WIDTH), config_d(WIDTH),
                    config_e(WIDTH)])
        fractions = d.loads.fractions()
        rows.append([
            name,
            b.speedup_over(a),
            d.speedup_over(a),
            e.speedup_over(a),
            100 * fractions["predicted_correctly"],
            100 * fractions["not_predicted"],
        ])
    return rows


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    headers = ["workload", "B speedup", "D speedup", "E speedup",
               "pred. correct (%)", "not predicted (%)"]
    print(render_table(
        headers, study(POINTER_CHASING, scale),
        title="pointer-chasing set (width %d)" % WIDTH))
    print()
    print(render_table(
        headers, study(NON_POINTER_CHASING, scale),
        title="non pointer-chasing set (width %d)" % WIDTH))
    print("""
reading guide (paper Section 5.2):
- pointer chasers: B barely above 1.0 -> stride prediction cannot follow
  p = p->next; the E column shows what a better predictor could unlock.
- regular codes: a large predicted-correctly share turns into real
  speedup with no oracle.
- load categories are per the paper: %s
""" % (", ".join(LOAD_CATEGORIES),))


if __name__ == "__main__":
    main()
